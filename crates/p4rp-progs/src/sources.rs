//! Canonical P4runpro sources for the 15 programs of Table 1.
//!
//! Programs are emitted by builder functions so the experiments can vary
//! the elastic parameters (cached keys, DIPs, routes) and the memory size.
//! Elastic case blocks carry the `/*elastic*/` marker the LoC counter
//! understands (§6.1: they correspond to non-constant table entries in the
//! P4 version and are excluded from the logic comparison).

use std::fmt::Write;

/// The Figure 2 in-network cache: one `(key, vaddr)` pair per elastic
/// read/write case pair. `mem` is the virtual memory size in buckets.
pub fn cache(name: &str, filter: &str, mem: u32, keys: &[(u32, u32)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "@ mem1 {mem}");
    let _ = writeln!(s, "program {name}(");
    let _ = writeln!(s, "    /*filtering traffic*/");
    let _ = writeln!(s, "    {filter}) {{");
    s.push_str("    EXTRACT(hdr.nc.op, har);   //get opcode\n");
    s.push_str("    EXTRACT(hdr.nc.key2, sar); //get key[0:31]\n");
    s.push_str("    EXTRACT(hdr.nc.key1, mar); //get key[32:63]\n");
    s.push_str("    BRANCH:\n");
    for (key, vaddr) in keys {
        let _ = writeln!(
            s,
            "    case(<har, 0, 0xffffffff>, <sar, {key}, 0xffffffff>, <mar, 0, 0xffffffff>) {{ /*elastic*/"
        );
        s.push_str("        RETURN;\n");
        let _ = writeln!(s, "        LOADI(mar, {vaddr});");
        s.push_str("        MEMREAD(mem1);\n");
        s.push_str("        MODIFY(hdr.nc.value, sar);\n");
        s.push_str("    };\n");
        let _ = writeln!(
            s,
            "    case(<har, 1, 0xffffffff>, <sar, {key}, 0xffffffff>, <mar, 0, 0xffffffff>) {{ /*elastic*/"
        );
        s.push_str("        DROP;\n");
        let _ = writeln!(s, "        LOADI(mar, {vaddr});");
        s.push_str("        EXTRACT(hdr.nc.value, sar);\n");
        s.push_str("        MEMWRITE(mem1);\n");
        s.push_str("    };\n");
    }
    s.push_str("    FORWARD(32); //cache miss\n");
    s.push_str("}\n");
    s
}

/// The Figure 16 stateless load balancer: DIP pool + port pool, one
/// elastic `FORWARD` case per egress port.
pub fn lb(name: &str, filter: &str, mem: u32, ports: &[u16]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "@ dip_pool_{name} {mem}");
    let _ = writeln!(s, "@ port_pool_{name} {mem}");
    let _ = writeln!(s, "program {name}(");
    let _ = writeln!(s, "    {filter}) {{");
    let _ = writeln!(s, "    HASH_5_TUPLE_MEM(port_pool_{name}); //locate bucket");
    let _ = writeln!(s, "    MEMREAD(port_pool_{name});          //get egress port");
    s.push_str("    BRANCH:\n");
    for (i, port) in ports.iter().enumerate() {
        let _ = writeln!(s, "    case(<sar, {i}, 0xffffffff>) {{ /*elastic*/");
        let _ = writeln!(s, "        FORWARD({port});");
        s.push_str("    };\n");
    }
    let _ = writeln!(s, "    MEMREAD(dip_pool_{name});  //get DIP");
    s.push_str("    MODIFY(hdr.ipv4.dst, sar); //write DIP\n");
    s.push_str("}\n");
    s
}

/// The Figure 17 heavy hitter detector: 2-row CMS + 2-row BF, threshold
/// `thresh`, `rows` buckets per row.
pub fn hh(name: &str, filter: &str, rows: u32, thresh: u32) -> String {
    format!(
        r#"@ cms1_{name} {rows} //CMS with two rows
@ cms2_{name} {rows}
@ bf1_{name} {rows} //BF with two rows
@ bf2_{name} {rows}
program {name}(
    {filter}) {{
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(cms1_{name});
    MEMADD(cms1_{name});        //count packet
    LOADI(har, {thresh});       //set threshold
    MIN(har, sar);              //compare with threshold
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(cms2_{name});
    MEMADD(cms2_{name});
    MIN(har, sar);
    BRANCH:
    /*flow count exceeds the threshold in both rows*/
    case(<har, {thresh}, 0xffffffff>) {{
        LOADI(sar, 1);
        HASH_5_TUPLE_MEM(bf1_{name});
        MEMOR(bf1_{name});      //check existence
        BRANCH:
        /*already reported: check the second row too*/
        case(<sar, 1, 0xffffffff>) {{
            LOADI(sar, 1);
            HASH_5_TUPLE_MEM(bf2_{name});
            MEMOR(bf2_{name});  //check another
            BRANCH:
            case(<sar, 0, 0xffffffff>) {{
                REPORT;         //false positive on row 1: report
            }};
        }};
        /*not seen yet: mark and report*/
        case(<sar, 0, 0xffffffff>) {{
            LOADI(sar, 1);
            HASH_5_TUPLE_MEM(bf2_{name});
            MEMOR(bf2_{name});  //update another
            REPORT;             //report this packet
        }};
    }};
}}
"#
    )
}

/// NetCache (the most complex of the 15): the in-network cache plus a
/// key-popularity sketch that reports hot missed keys to the control
/// plane.
pub fn netcache(name: &str, filter: &str, mem: u32, keys: &[(u32, u32)], thresh: u32) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "@ kv_{name} {mem}");
    let _ = writeln!(s, "@ pop1_{name} {mem}");
    let _ = writeln!(s, "@ pop2_{name} {mem}");
    let _ = writeln!(s, "program {name}(");
    let _ = writeln!(s, "    {filter}) {{");
    s.push_str("    EXTRACT(hdr.nc.op, har);\n");
    s.push_str("    EXTRACT(hdr.nc.key2, sar);\n");
    s.push_str("    EXTRACT(hdr.nc.key1, mar);\n");
    s.push_str("    BRANCH:\n");
    for (key, vaddr) in keys {
        let _ = writeln!(
            s,
            "    case(<har, 0, 0xffffffff>, <sar, {key}, 0xffffffff>, <mar, 0, 0xffffffff>) {{ /*elastic*/"
        );
        s.push_str("        RETURN;\n");
        let _ = writeln!(s, "        LOADI(mar, {vaddr});");
        let _ = writeln!(s, "        MEMREAD(kv_{name});");
        s.push_str("        MODIFY(hdr.nc.value, sar);\n");
        s.push_str("    };\n");
        let _ = writeln!(
            s,
            "    case(<har, 1, 0xffffffff>, <sar, {key}, 0xffffffff>, <mar, 0, 0xffffffff>) {{ /*elastic*/"
        );
        s.push_str("        DROP;\n");
        let _ = writeln!(s, "        LOADI(mar, {vaddr});");
        s.push_str("        EXTRACT(hdr.nc.value, sar);\n");
        let _ = writeln!(s, "        MEMWRITE(kv_{name});");
        s.push_str("    };\n");
    }
    // Popularity path (runs for every lookup; hit packets have already
    // taken their RETURN/DROP verdict): count the key in a 2-row sketch
    // and report keys crossing the threshold so the control plane can
    // promote them into the cache.
    s.push_str("    EXTRACT(hdr.nc.key2, har); //popularity key\n");
    s.push_str("    LOADI(sar, 1);\n");
    let _ = writeln!(s, "    HASH_MEM(pop1_{name});");
    let _ = writeln!(s, "    MEMADD(pop1_{name});");
    s.push_str("    BRANCH:\n");
    let _ = writeln!(s, "    /*row 1 just crossed the threshold*/");
    let _ = writeln!(s, "    case(<sar, {thresh}, 0xffffffff>) {{");
    s.push_str("        LOADI(sar, 1);\n");
    let _ = writeln!(s, "        HASH_MEM(pop2_{name}); //dedup row, different stage hash");
    let _ = writeln!(s, "        MEMOR(pop2_{name});    //first sighting?");
    s.push_str("        BRANCH:\n");
    let _ = writeln!(s, "        case(<sar, 0, 0xffffffff>) {{");
    s.push_str("            REPORT; //hot key: promote\n");
    s.push_str("        };\n");
    s.push_str("    };\n");
    s.push_str("    FORWARD(32); //miss: to the server\n");
    s.push_str("}\n");
    s
}

/// DQAcc-style database query acceleration: per-flow aggregation of a
/// record value pushed down into the switch; the running aggregate is
/// written back into the header.
pub fn dqacc(name: &str, filter: &str, mem: u32) -> String {
    format!(
        r#"@ agg_{name} {mem}
program {name}(
    {filter}) {{
    EXTRACT(hdr.nc.value, sar); //record value
    HASH_5_TUPLE_MEM(agg_{name});
    MEMADD(agg_{name});         //running per-flow aggregate
    MODIFY(hdr.nc.value, sar);  //push result into the record
    FORWARD(16);
}}
"#
    )
}

/// Stateful firewall: internal traffic whitelists its (symmetric) flow key
/// in a Bloom filter; external traffic passes only if the key exists.
pub fn firewall(name: &str, internal_max_port: u16, mem: u32) -> String {
    format!(
        r#"@ fwbf_{name} {mem}
program {name}(
    <hdr.ipv4.src, 0.0.0.0, 0x00000000>) {{
    EXTRACT(hdr.ipv4.src, har);
    EXTRACT(hdr.ipv4.dst, sar);
    XOR(har, sar);              //direction-independent flow key
    EXTRACT(meta.ingress_port, sar);
    BRANCH:
    /*from the internal side: record and pass*/
    case(<sar, 0, 0xffffff{hi:02x}>) {{
        HASH_MEM(fwbf_{name});
        LOADI(sar, 1);
        MEMOR(fwbf_{name});     //whitelist the flow
        FORWARD(48);
    }};
    /*from outside: pass only established flows*/
    case(<sar, 0, 0x00000000>) {{
        HASH_MEM(fwbf_{name});
        MEMREAD(fwbf_{name});   //probe without inserting
        BRANCH:
        case(<sar, 1, 0xffffffff>) {{
            FORWARD(0);
        }};
        DROP;
    }};
}}
"#,
        // Internal ports 0..=internal_max_port: matched by masking off the
        // low bits (port space must be power-of-two aligned).
        hi = !(internal_max_port) & 0xff
    )
}

/// L2 forwarding: MAC (low 32 bits) → port, one elastic case per station.
pub fn l2_forwarding(name: &str, stations: &[(u32, u16)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "program {name}(");
    let _ = writeln!(s, "    <hdr.eth.type, 0, 0x0000>) {{");
    s.push_str("    EXTRACT(hdr.eth.dst, har);\n");
    s.push_str("    BRANCH:\n");
    for (mac_lo, port) in stations {
        let _ = writeln!(s, "    case(<har, {mac_lo}, 0xffffffff>) {{ /*elastic*/");
        let _ = writeln!(s, "        FORWARD({port});");
        s.push_str("    };\n");
    }
    s.push_str("    DROP;\n");
    s.push_str("}\n");
    s
}

/// L3 routing: destination prefix → port, one elastic case per route.
pub fn l3_routing(name: &str, routes: &[(u32, u32, u16)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "program {name}(");
    let _ = writeln!(s, "    <hdr.ipv4.proto, 0, 0x00>) {{");
    s.push_str("    EXTRACT(hdr.ipv4.dst, har);\n");
    s.push_str("    BRANCH:\n");
    for (prefix, mask, port) in routes {
        let _ = writeln!(s, "    case(<har, {prefix}, 0x{mask:08x}>) {{ /*elastic*/");
        let _ = writeln!(s, "        FORWARD({port});");
        s.push_str("    };\n");
    }
    s.push_str("    DROP;\n");
    s.push_str("}\n");
    s
}

/// Tunnel ingress: rewrite the destination to the tunnel endpoint and
/// forward into the core.
pub fn tunnel(name: &str, filter: &str, endpoint: u32, port: u16) -> String {
    format!(
        r#"program {name}(
    {filter}) {{
    LOADI(sar, {endpoint});
    MODIFY(hdr.ipv4.dst, sar); //tunnel endpoint
    FORWARD({port});
}}
"#
    )
}

/// In-network calculator on the cache header: opcode selects the ALU
/// function over the two key words, the result returns to the sender.
pub fn calculator(name: &str) -> String {
    format!(
        r#"program {name}(
    <hdr.udp.dst_port, 7777, 0xffff>, <hdr.nc.op, 0, 0x00>) {{
    EXTRACT(hdr.nc.op, har);   //opcode
    EXTRACT(hdr.nc.key2, sar); //operand a
    EXTRACT(hdr.nc.key1, mar); //operand b
    BRANCH:
    case(<har, 0, 0xffffffff>) {{
        ADD(sar, mar);
        MODIFY(hdr.nc.value, sar);
        RETURN;
    }};
    case(<har, 1, 0xffffffff>) {{
        AND(sar, mar);
        MODIFY(hdr.nc.value, sar);
        RETURN;
    }};
    case(<har, 2, 0xffffffff>) {{
        OR(sar, mar);
        MODIFY(hdr.nc.value, sar);
        RETURN;
    }};
    case(<har, 3, 0xffffffff>) {{
        XOR(sar, mar);
        MODIFY(hdr.nc.value, sar);
        RETURN;
    }};
    case(<har, 4, 0xffffffff>) {{
        MAX(sar, mar);
        MODIFY(hdr.nc.value, sar);
        RETURN;
    }};
    DROP;
}}
"#
    )
}

/// ECN marking: ECT(0)/ECT(1) packets get the CE codepoint.
pub fn ecn(name: &str, filter: &str) -> String {
    format!(
        r#"program {name}(
    {filter}) {{
    EXTRACT(hdr.ipv4.ecn, har);
    BRANCH:
    case(<har, 1, 0xffffffff>) {{
        LOADI(sar, 3);
        MODIFY(hdr.ipv4.ecn, sar); //mark CE
    }};
    case(<har, 2, 0xffffffff>) {{
        LOADI(sar, 3);
        MODIFY(hdr.ipv4.ecn, sar);
    }};
    FORWARD(4);
}}
"#
    )
}

/// 2-row count-min sketch.
pub fn cms(name: &str, filter: &str, rows: u32) -> String {
    format!(
        r#"@ cmsa_{name} {rows}
@ cmsb_{name} {rows}
program {name}(
    {filter}) {{
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(cmsa_{name});
    MEMADD(cmsa_{name});
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(cmsb_{name});
    MEMADD(cmsb_{name});
}}
"#
    )
}

/// 2-row Bloom filter.
pub fn bloom(name: &str, filter: &str, rows: u32) -> String {
    format!(
        r#"@ bfa_{name} {rows}
@ bfb_{name} {rows}
program {name}(
    {filter}) {{
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(bfa_{name});
    MEMOR(bfa_{name});
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(bfb_{name});
    MEMOR(bfb_{name});
}}
"#
    )
}

/// SuMax-style sketch: per-flow byte sum plus per-flow packet-size max.
pub fn sumax(name: &str, filter: &str, rows: u32) -> String {
    format!(
        r#"@ sum_{name} {rows}
@ max_{name} {rows}
program {name}(
    {filter}) {{
    EXTRACT(meta.pkt_len, sar);
    HASH_5_TUPLE_MEM(sum_{name});
    MEMADD(sum_{name});
    EXTRACT(meta.pkt_len, sar);
    HASH_5_TUPLE_MEM(max_{name});
    MEMMAX(max_{name});
}}
"#
    )
}

/// HyperLogLog: flow-hash leading-one position → register max. The 32
/// rank cases are *inelastic* (fixed program logic, one per possible
/// leading-zero count), which is why HLL has both the largest LoC and the
/// largest update delay in Table 1.
pub fn hll(name: &str, filter: &str, registers: u32) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "@ hllreg_{name} {registers}");
    let _ = writeln!(s, "program {name}(");
    let _ = writeln!(s, "    {filter}) {{");
    s.push_str("    HASH_5_TUPLE;              //rank source\n");
    let _ = writeln!(s, "    HASH_5_TUPLE_MEM(hllreg_{name}); //register index");
    s.push_str("    BRANCH:\n");
    for rank in 1..=32u32 {
        let bit = 32 - rank; // position of the leading one
        let value = 1u32 << bit;
        let mask = if rank == 1 { 0x8000_0000u32 } else { (!0u32) << bit };
        let _ = writeln!(s, "    case(<har, 0x{value:08x}, 0x{mask:08x}>) {{");
        let _ = writeln!(s, "        LOADI(sar, {rank});");
        let _ = writeln!(s, "        MEMMAX(hllreg_{name});");
        s.push_str("    };\n");
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4rp_lang::{count_loc, parse};

    #[test]
    fn all_sources_parse() {
        let filter_ip = "<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>";
        let filter_nc = "<hdr.udp.dst_port, 7777, 0xffff>";
        let sources = [
            cache("cache", filter_nc, 1024, &[(0x8888, 512)]),
            lb("lb", filter_ip, 256, &[0, 1]),
            hh("hh", filter_ip, 1024, 1024),
            netcache("nc", filter_nc, 1024, &[(0x8888, 512)], 128),
            dqacc("dq", filter_nc, 256),
            firewall("fw", 31, 1024),
            l2_forwarding("l2", &[(0xaabbccdd, 3)]),
            l3_routing("l3", &[(0x0a000000, 0xff000000, 7)]),
            tunnel("tun", filter_ip, 0x0a0a0a0a, 8),
            calculator("calc"),
            ecn("ecn", filter_ip),
            cms("cms", filter_ip, 1024),
            bloom("bf", filter_ip, 1024),
            sumax("sm", filter_ip, 1024),
            hll("hll", filter_ip, 256),
        ];
        for src in &sources {
            parse(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }

    #[test]
    fn loc_ordering_matches_table1_shape() {
        // Table 1: HLL is by far the largest; simple forwarding programs
        // are tiny; cache/hh are mid-sized.
        let filter_ip = "<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>";
        let filter_nc = "<hdr.udp.dst_port, 7777, 0xffff>";
        let l_hll = count_loc(&hll("h", filter_ip, 256));
        let l_cache = count_loc(&cache("c", filter_nc, 1024, &[(0x8888, 512)]));
        let l_hh = count_loc(&hh("x", filter_ip, 1024, 1024));
        let l_l3 = count_loc(&l3_routing("r", &[(0x0a000000, 0xff000000, 7)]));
        let l_cms = count_loc(&cms("m", filter_ip, 1024));
        assert!(l_hll > 120, "HLL is the outlier: {l_hll}");
        assert!(l_hll > l_hh && l_hh > l_cache && l_cache > l_cms && l_cms > l_l3);
        assert!(l_l3 <= 10);
    }

    #[test]
    fn elastic_blocks_scale_loc_but_not_logic() {
        use p4rp_lang::count_loc_excluding_elastic;
        let filter_nc = "<hdr.udp.dst_port, 7777, 0xffff>";
        let one = cache("c", filter_nc, 1024, &[(1, 0)]);
        let many = cache("c", filter_nc, 1024, &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        assert!(count_loc(&many) > count_loc(&one));
        assert_eq!(
            count_loc_excluding_elastic(&many),
            count_loc_excluding_elastic(&one),
            "elastic blocks do not add program logic"
        );
    }

    #[test]
    fn hll_rank_masks_partition_the_hash_space() {
        // Every nonzero 32-bit value matches exactly one rank case under
        // first-match (priority) semantics — mirror the matching here.
        let cases: Vec<(u32, u32)> = (1..=32u32)
            .map(|rank| {
                let bit = 32 - rank;
                let value = 1u32 << bit;
                let mask = if rank == 1 { 0x8000_0000 } else { (!0u32) << bit };
                (value, mask)
            })
            .collect();
        for h in [1u32, 2, 3, 0x8000_0000, 0x7fff_ffff, 0x0000_8000, 12345] {
            let rank = cases
                .iter()
                .position(|(v, m)| h & m == v & m)
                .map(|i| i + 1)
                .expect("nonzero value matches some rank");
            assert_eq!(rank as u32, h.leading_zeros() + 1);
        }
    }
}
