//! Parameterized workload generators for the §6.2 experiments.
//!
//! Each generator yields the `i`-th *instance* of a program family with a
//! unique name and a unique flow filter (an exact destination address
//! derived from the instance index), so hundreds of instances can coexist
//! — exactly how the paper arranges its 500-epoch deployment runs and the
//! program-capacity sweeps.
//!
//! Parameters follow §6.2: `mem` is the per-program memory request in
//! 32-bit buckets (the default 256 = the paper's 1,024 B), and
//! `elastic` is the number of elastic case blocks (the paper's baseline
//! is 2 where applicable, enhanced to 16 and 256 in Figure 9).

use crate::sources;

/// The program families the workloads draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Cache.
    Cache,
    /// Lb.
    Lb,
    /// Hh.
    Hh,
    /// NetCache.
    NetCache,
    /// Dqacc.
    Dqacc,
    /// Firewall.
    Firewall,
    /// L2Fwd.
    L2Fwd,
    /// L3Route.
    L3Route,
    /// Tunnel.
    Tunnel,
    /// Calculator.
    Calculator,
    /// Ecn.
    Ecn,
    /// Cms.
    Cms,
    /// Bf.
    Bf,
    /// SuMax.
    SuMax,
    /// Hll.
    Hll,
}

impl Family {
    /// The three workload programs of §6.2.1 (cache / lb / hh).
    pub const CORE: [Family; 3] = [Family::Cache, Family::Lb, Family::Hh];

    /// All 15 families (the "all-mixed" workload).
    pub const ALL: [Family; 15] = [
        Family::Cache,
        Family::Lb,
        Family::Hh,
        Family::NetCache,
        Family::Dqacc,
        Family::Firewall,
        Family::L2Fwd,
        Family::L3Route,
        Family::Tunnel,
        Family::Calculator,
        Family::Ecn,
        Family::Cms,
        Family::Bf,
        Family::SuMax,
        Family::Hll,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Cache => "cache",
            Family::Lb => "lb",
            Family::Hh => "hh",
            Family::NetCache => "nc",
            Family::Dqacc => "dqacc",
            Family::Firewall => "fw",
            Family::L2Fwd => "l2",
            Family::L3Route => "l3",
            Family::Tunnel => "tun",
            Family::Calculator => "calc",
            Family::Ecn => "ecn",
            Family::Cms => "cms",
            Family::Bf => "bf",
            Family::SuMax => "sumax",
            Family::Hll => "hll",
        }
    }

    /// Does this family use elastic case blocks?
    pub fn has_elastic(self) -> bool {
        matches!(
            self,
            Family::Cache | Family::Lb | Family::NetCache | Family::L2Fwd | Family::L3Route
        )
    }

    /// Does this family request stateful memory?
    pub fn has_memory(self) -> bool {
        !matches!(
            self,
            Family::L2Fwd | Family::L3Route | Family::Tunnel | Family::Calculator | Family::Ecn
        )
    }
}

/// Workload parameters (§6.2 defaults).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Memory request per program in 32-bit buckets (256 = 1,024 B).
    pub mem: u32,
    /// Elastic case blocks, where applicable.
    pub elastic: usize,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams { mem: 256, elastic: 2 }
    }
}

/// A unique exact-match flow filter for instance `i`.
pub fn instance_filter(i: usize) -> String {
    let a = 10 + (i >> 16) as u8;
    let b = ((i >> 8) & 0xff) as u8;
    let c = (i & 0xff) as u8;
    format!("<hdr.ipv4.dst, {a}.{b}.{c}.1, 0xffffffff>")
}

/// Build instance `i` of a family.
pub fn instance(family: Family, i: usize, p: WorkloadParams) -> String {
    let name = format!("{}_{i:05}", family.name());
    let filter = instance_filter(i);
    let mem = p.mem.max(16).next_power_of_two();
    match family {
        Family::Cache => {
            let keys: Vec<(u32, u32)> = (0..p.elastic.div_ceil(2).max(1))
                .map(|k| (0x8000 + k as u32, k as u32))
                .collect();
            sources::cache(&name, &filter, mem, &keys)
        }
        Family::Lb => {
            let ports: Vec<u16> = (0..p.elastic.max(1)).map(|k| (k % 32) as u16).collect();
            sources::lb(&name, &filter, mem, &ports)
        }
        Family::Hh => sources::hh(&name, &filter, (mem / 4).max(16), 1024),
        Family::NetCache => {
            let keys: Vec<(u32, u32)> = (0..p.elastic.div_ceil(2).max(1))
                .map(|k| (0x8000 + k as u32, k as u32))
                .collect();
            sources::netcache(&name, &filter, (mem / 2).max(16).next_power_of_two(), &keys, 128)
        }
        Family::Dqacc => sources::dqacc(&name, &filter, mem),
        Family::Firewall => {
            // The firewall's own filter is port-based; rewrite it to the
            // instance filter for isolation.
            sources::firewall(&name, 31, mem)
                .replace("<hdr.ipv4.src, 0.0.0.0, 0x00000000>", &filter)
        }
        Family::L2Fwd => {
            let stations: Vec<(u32, u16)> =
                (0..p.elastic.max(1)).map(|k| (k as u32 + 1, (k % 32) as u16)).collect();
            sources::l2_forwarding(&name, &stations)
                .replace("<hdr.eth.type, 0, 0x0000>", &filter)
        }
        Family::L3Route => {
            let routes: Vec<(u32, u32, u16)> = (0..p.elastic.max(1))
                .map(|k| (0x0a00_0000 + ((k as u32) << 16), 0xffff_0000, (k % 32) as u16))
                .collect();
            sources::l3_routing(&name, &routes).replace("<hdr.ipv4.proto, 0, 0x00>", &filter)
        }
        Family::Tunnel => sources::tunnel(&name, &filter, 0x0a0a_0a0a, 8),
        Family::Calculator => sources::calculator(&name)
            .replace("<hdr.udp.dst_port, 7777, 0xffff>, <hdr.nc.op, 0, 0x00>", &filter),
        Family::Ecn => sources::ecn(&name, &filter),
        Family::Cms => sources::cms(&name, &filter, (mem / 2).max(16).next_power_of_two()),
        Family::Bf => sources::bloom(&name, &filter, (mem / 2).max(16).next_power_of_two()),
        Family::SuMax => sources::sumax(&name, &filter, (mem / 2).max(16).next_power_of_two()),
        Family::Hll => sources::hll(&name, &filter, mem.min(1024)),
    }
}

/// The §6.2 workload streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Only cache instances.
    Cache,
    /// Only load-balancer instances.
    Lb,
    /// Only heavy-hitter instances.
    Hh,
    /// Only NetCache instances (the most complex program).
    Nc,
    /// Randomly one of cache / lb / hh per epoch (the paper's "mix").
    Mixed,
    /// Randomly one of all 15 per epoch (the paper's "all-mixed").
    AllMixed,
}

impl Workload {
    /// The program for deployment epoch `i`. `pick` supplies randomness
    /// for the mixed workloads (pass an RNG-derived value; deterministic
    /// runs pass a seeded sequence).
    pub fn program(self, i: usize, pick: usize, p: WorkloadParams) -> String {
        let family = match self {
            Workload::Cache => Family::Cache,
            Workload::Lb => Family::Lb,
            Workload::Hh => Family::Hh,
            Workload::Nc => Family::NetCache,
            Workload::Mixed => Family::CORE[pick % 3],
            Workload::AllMixed => Family::ALL[pick % 15],
        };
        instance(family, i, p)
    }

    /// Label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Cache => "cache",
            Workload::Lb => "lb",
            Workload::Hh => "hh",
            Workload::Nc => "nc",
            Workload::Mixed => "mix",
            Workload::AllMixed => "all-mixed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4rp_lang::parse;

    #[test]
    fn every_family_instance_parses() {
        for family in Family::ALL {
            for params in [
                WorkloadParams::default(),
                WorkloadParams { mem: 1024, elastic: 16 },
            ] {
                let src = instance(family, 3, params);
                parse(&src).unwrap_or_else(|e| panic!("{family:?}: {e}\n{src}"));
            }
        }
    }

    #[test]
    fn instances_have_unique_names_and_filters() {
        let a = instance(Family::Cache, 1, WorkloadParams::default());
        let b = instance(Family::Cache, 2, WorkloadParams::default());
        assert!(a.contains("cache_00001"));
        assert!(b.contains("cache_00002"));
        assert!(a.contains("10.0.1.1"));
        assert!(b.contains("10.0.2.1"));
    }

    #[test]
    fn filter_addresses_stay_distinct_across_thousands() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096 {
            assert!(seen.insert(instance_filter(i)), "collision at {i}");
        }
    }

    #[test]
    fn elastic_parameter_scales_cases() {
        let small = instance(Family::Lb, 0, WorkloadParams { mem: 256, elastic: 2 });
        let big = instance(Family::Lb, 0, WorkloadParams { mem: 256, elastic: 16 });
        let count = |s: &str| s.matches("case(").count();
        assert_eq!(count(&small), 2);
        assert_eq!(count(&big), 16);
    }

    #[test]
    fn workload_streams_select_families() {
        let p = WorkloadParams::default();
        assert!(Workload::Cache.program(0, 0, p).contains("program cache_"));
        assert!(Workload::Nc.program(0, 0, p).contains("program nc_"));
        // Mixed cycles through the three core families by pick value.
        assert!(Workload::Mixed.program(0, 0, p).contains("program cache_"));
        assert!(Workload::Mixed.program(0, 1, p).contains("program lb_"));
        assert!(Workload::Mixed.program(0, 2, p).contains("program hh_"));
    }
}
