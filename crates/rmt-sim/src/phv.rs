//! The Packet Header Vector (PHV) and its field registry.
//!
//! The PHV carries all stateless per-packet data through the pipeline:
//! parsed header fields, intrinsic metadata consumed by the traffic manager,
//! and user metadata (the three P4runpro "registers" live here). Fields are
//! declared once, at provisioning time, into a [`FieldTable`]; the running
//! pipeline then addresses them by dense [`FieldId`]s.
//!
//! Field widths are 1–64 bits. Widths matter: every write is masked to the
//! declared width, which is how the simulator reproduces hardware ALU
//! wrap-around (the paper's SUB/SUBI pseudo-primitives depend on 32-bit
//! addition overflow, Figure 14).

use crate::error::{SimError, SimResult};
use std::collections::HashMap;

/// A handle to a declared PHV field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u16);

/// Declaration of one PHV field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpec {
    /// Human-readable name.
    pub name: String,
    /// Bits.
    pub bits: u8,
}

impl FieldSpec {
    /// Mask.
    pub fn mask(&self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }
}

/// Intrinsic metadata fields every switch provisions, mirroring the
/// Tofino intrinsic metadata consumed by the traffic manager.
#[derive(Debug, Clone, Copy)]
pub struct Intrinsics {
    /// Port the packet arrived on.
    pub ingress_port: FieldId,
    /// Port the packet should leave on (set by forwarding actions).
    pub egress_spec: FieldId,
    /// Non-zero ⇒ `egress_spec` holds a real forwarding decision. An
    /// explicit bit (rather than PHV validity) so the decision survives
    /// recirculation in a state header.
    pub egress_valid: FieldId,
    /// Non-zero ⇒ the traffic manager drops the packet.
    pub drop_flag: FieldId,
    /// Non-zero ⇒ reflect the packet back out its ingress port (`RETURN`).
    pub return_flag: FieldId,
    /// Non-zero ⇒ copy the packet to the CPU port (`REPORT`).
    pub report_flag: FieldId,
    /// Non-zero ⇒ recirculate for another pipeline pass.
    pub recirc_flag: FieldId,
    /// Non-zero ⇒ replicate to the ports of this multicast group (the §7
    /// extension enabling SwitchML-style aggregation).
    pub mcast_group: FieldId,
    /// Parse-path bitmap maintained by the parser (§4.1.1): one bit per
    /// header type seen.
    pub parse_bitmap: FieldId,
    /// Frame length in bytes.
    pub pkt_len: FieldId,
}

/// The registry of all PHV fields of one provisioned switch.
#[derive(Debug, Clone)]
pub struct FieldTable {
    specs: Vec<FieldSpec>,
    by_name: HashMap<String, FieldId>,
    intrinsics: Intrinsics,
}

impl FieldTable {
    /// Create a field table with the intrinsic metadata pre-registered.
    pub fn new() -> FieldTable {
        let mut t = FieldTable {
            specs: Vec::new(),
            by_name: HashMap::new(),
            intrinsics: Intrinsics {
                ingress_port: FieldId(0),
                egress_spec: FieldId(0),
                egress_valid: FieldId(0),
                drop_flag: FieldId(0),
                return_flag: FieldId(0),
                report_flag: FieldId(0),
                recirc_flag: FieldId(0),
                mcast_group: FieldId(0),
                parse_bitmap: FieldId(0),
                pkt_len: FieldId(0),
            },
        };
        t.intrinsics = Intrinsics {
            ingress_port: t.register("ig_intr_md.ingress_port", 16).unwrap(),
            egress_spec: t.register("ig_intr_md.egress_spec", 16).unwrap(),
            egress_valid: t.register("ig_intr_md.egress_valid", 1).unwrap(),
            drop_flag: t.register("ig_intr_md.drop", 1).unwrap(),
            return_flag: t.register("ig_intr_md.return", 1).unwrap(),
            report_flag: t.register("ig_intr_md.report", 1).unwrap(),
            recirc_flag: t.register("ig_intr_md.recirc", 1).unwrap(),
            mcast_group: t.register("ig_intr_md.mcast_group", 16).unwrap(),
            parse_bitmap: t.register("ig_intr_md.parse_bitmap", 16).unwrap(),
            pkt_len: t.register("ig_intr_md.pkt_len", 16).unwrap(),
        };
        t
    }

    /// Declare a new field. Registering an existing name with the same
    /// width returns the existing id (idempotent), with a different width
    /// is an error.
    pub fn register(&mut self, name: &str, bits: u8) -> SimResult<FieldId> {
        assert!((1..=64).contains(&bits), "field width out of range");
        if let Some(&id) = self.by_name.get(name) {
            if self.specs[id.0 as usize].bits != bits {
                return Err(SimError::Config(format!(
                    "field `{name}` re-registered with width {bits} (was {})",
                    self.specs[id.0 as usize].bits
                )));
            }
            return Ok(id);
        }
        let id = FieldId(u16::try_from(self.specs.len()).expect("too many PHV fields"));
        self.specs.push(FieldSpec { name: name.to_string(), bits });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Lookup.
    pub fn lookup(&self, name: &str) -> SimResult<FieldId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownField(name.to_string()))
    }

    /// Spec.
    pub fn spec(&self, id: FieldId) -> &FieldSpec {
        &self.specs[id.0 as usize]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Intrinsics.
    pub fn intrinsics(&self) -> Intrinsics {
        self.intrinsics
    }

    /// Total PHV container bits consumed, counting each field rounded up to
    /// its container size (8/16/32 bits, 32-bit pairs for wider fields) —
    /// the quantity the PHV row of Figure 10 reports.
    pub fn container_bits(&self) -> usize {
        self.specs
            .iter()
            .map(|s| match s.bits {
                1..=8 => 8,
                9..=16 => 16,
                17..=32 => 32,
                _ => 64,
            })
            .sum()
    }

    /// Iterate `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &FieldSpec)> {
        self.specs.iter().enumerate().map(|(i, s)| (FieldId(i as u16), s))
    }
}

impl Default for FieldTable {
    fn default() -> Self {
        FieldTable::new()
    }
}

/// One packet's header vector: a value and a validity bit per field.
///
/// `Default` is the zero-field PHV: a valid pooling placeholder (see
/// [`Phv::reset_for`]), not a usable packet state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Phv {
    values: Vec<u64>,
    valid: Vec<bool>,
}

impl Phv {
    /// An all-invalid PHV sized for `table`.
    pub fn new(table: &FieldTable) -> Phv {
        Phv { values: vec![0; table.len()], valid: vec![false; table.len()] }
    }

    /// Make this PHV equivalent to `Phv::new(table)` in place, reusing its
    /// allocations — the per-pass reset of the switch's scratch PHV.
    pub fn reset_for(&mut self, table: &FieldTable) {
        self.values.clear();
        self.values.resize(table.len(), 0);
        self.valid.clear();
        self.valid.resize(table.len(), false);
    }

    /// Read a field. Invalid fields read as 0, matching how RMT match keys
    /// treat unparsed headers (their validity is part of the match instead).
    pub fn get(&self, id: FieldId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Is valid.
    pub fn is_valid(&self, id: FieldId) -> bool {
        self.valid[id.0 as usize]
    }

    /// Write a field, masking to the declared width, and mark it valid.
    pub fn set(&mut self, table: &FieldTable, id: FieldId, value: u64) {
        let masked = value & table.spec(id).mask();
        self.values[id.0 as usize] = masked;
        self.valid[id.0 as usize] = true;
    }

    /// Mark a field invalid and clear it (used between pipeline passes for
    /// per-pass metadata).
    pub fn invalidate(&mut self, id: FieldId) {
        self.values[id.0 as usize] = 0;
        self.valid[id.0 as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsics_are_preregistered() {
        let t = FieldTable::new();
        assert_eq!(t.lookup("ig_intr_md.ingress_port").unwrap(), t.intrinsics().ingress_port);
        assert!(t.len() >= 8);
    }

    #[test]
    fn register_is_idempotent() {
        let mut t = FieldTable::new();
        let a = t.register("hdr.ipv4.dst", 32).unwrap();
        let b = t.register("hdr.ipv4.dst", 32).unwrap();
        assert_eq!(a, b);
        assert!(t.register("hdr.ipv4.dst", 16).is_err());
    }

    #[test]
    fn unknown_lookup_fails() {
        let t = FieldTable::new();
        assert!(matches!(t.lookup("nope"), Err(SimError::UnknownField(_))));
    }

    #[test]
    fn set_masks_to_width() {
        let mut t = FieldTable::new();
        let f = t.register("meta.x", 8).unwrap();
        let mut phv = Phv::new(&t);
        phv.set(&t, f, 0x1ff);
        assert_eq!(phv.get(f), 0xff);
    }

    #[test]
    fn wrap_around_semantics_for_32bit() {
        // The SUB pseudo-primitive depends on 32-bit two's-complement
        // wrap-around: a + (!b) + 1 ≡ a - b (mod 2^32).
        let mut t = FieldTable::new();
        let f = t.register("meta.r", 32).unwrap();
        let mut phv = Phv::new(&t);
        let a = 5u64;
        let b = 9u64;
        let not_b = (!b) & 0xffff_ffff;
        phv.set(&t, f, a + not_b + 1);
        assert_eq!(phv.get(f) as u32, (5u32).wrapping_sub(9));
    }

    #[test]
    fn invalidate_clears() {
        let mut t = FieldTable::new();
        let f = t.register("meta.y", 32).unwrap();
        let mut phv = Phv::new(&t);
        phv.set(&t, f, 7);
        assert!(phv.is_valid(f));
        phv.invalidate(f);
        assert!(!phv.is_valid(f));
        assert_eq!(phv.get(f), 0);
    }

    #[test]
    fn container_bits_round_up() {
        let mut t = FieldTable::new();
        let before = t.container_bits();
        t.register("a", 3).unwrap(); // 8-bit container
        t.register("b", 12).unwrap(); // 16-bit container
        t.register("c", 20).unwrap(); // 32-bit container
        t.register("d", 48).unwrap(); // 64 bits (pair)
        assert_eq!(t.container_bits() - before, 8 + 16 + 32 + 64);
    }
}
