//! Resource accounting — the simulator's stand-in for P4 Insight.
//!
//! Usage is computed from the *actual* provisioned pipeline configuration
//! (tables, actions, register arrays, PHV layout), which is the same
//! quantity the paper reads off P4C/P4 Insight for Figure 10. Seven
//! resources are tracked: PHV container bits, hash output bits, SRAM
//! blocks, TCAM blocks, VLIW slots, SALUs, and logical table IDs (LTIDs).

use crate::phv::FieldTable;
use crate::pipeline::{Pipeline, Stage};
use crate::table::Table;
use crate::error::{SimError, SimResult};

/// SRAM block geometry: 1024 rows × 128 bits.
pub const SRAM_BLOCK_BITS: usize = 1024 * 128;
/// TCAM block geometry: 512 entries × 44 bits.
pub const TCAM_BLOCK_ENTRIES: usize = 512;
/// `TCAM_BLOCK_WIDTH`.
pub const TCAM_BLOCK_WIDTH: usize = 44;
/// Match-overhead bits per SRAM exact-match entry (pointer + version).
const SRAM_ENTRY_OVERHEAD: usize = 20;
/// Action-data bits reserved per entry (two 64-bit immediates).
const ACTION_DATA_BITS: usize = 128;

/// Resource usage of one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageUsage {
    /// Sram blocks.
    pub sram_blocks: usize,
    /// Tcam blocks.
    pub tcam_blocks: usize,
    /// Vliw slots.
    pub vliw_slots: usize,
    /// Salus.
    pub salus: usize,
    /// Hash bits.
    pub hash_bits: usize,
    /// Ltids.
    pub ltids: usize,
}

impl StageUsage {
    fn add(&mut self, other: StageUsage) {
        self.sram_blocks += other.sram_blocks;
        self.tcam_blocks += other.tcam_blocks;
        self.vliw_slots += other.vliw_slots;
        self.salus += other.salus;
        self.hash_bits += other.hash_bits;
        self.ltids += other.ltids;
    }
}

/// Compute the cost of one table.
pub fn table_usage(table: &Table, ft: &FieldTable) -> StageUsage {
    let key_bits = table.key_bits(ft);
    let mut u = StageUsage { ltids: 1, ..Default::default() };

    if table.key.needs_tcam() && !table.atcam {
        // Ternary/LPM/range match burns TCAM: width-chained blocks deep
        // enough for the capacity.
        let wide = key_bits.div_ceil(TCAM_BLOCK_WIDTH).max(1);
        let deep = table.capacity.div_ceil(TCAM_BLOCK_ENTRIES).max(1);
        u.tcam_blocks = wide * deep;
        // Action data still lives in SRAM.
        u.sram_blocks = (table.capacity * ACTION_DATA_BITS).div_ceil(SRAM_BLOCK_BITS).max(1);
    } else if table.atcam {
        // Algorithmic TCAM stores value + mask per entry in SRAM.
        let entry_bits = 2 * key_bits + SRAM_ENTRY_OVERHEAD + ACTION_DATA_BITS;
        u.sram_blocks = (table.capacity * entry_bits).div_ceil(SRAM_BLOCK_BITS).max(1);
    } else {
        let entry_bits = key_bits + SRAM_ENTRY_OVERHEAD + ACTION_DATA_BITS;
        u.sram_blocks = (table.capacity * entry_bits).div_ceil(SRAM_BLOCK_BITS).max(1);
    }

    for action in &table.actions {
        u.vliw_slots += action.vliw_slots();
        if let Some(h) = &action.hash {
            u.hash_bits = u.hash_bits.max(usize::from(h.spec.width));
        }
    }
    // One SALU per stateful array the table's actions touch.
    let mut arrays: Vec<usize> = table
        .actions
        .iter()
        .filter_map(|a| a.salu.as_ref().map(|s| s.array))
        .collect();
    arrays.sort_unstable();
    arrays.dedup();
    u.salus = arrays.len();
    u
}

/// Compute the usage of one stage (tables + register arrays).
pub fn stage_usage(stage: &Stage, ft: &FieldTable) -> StageUsage {
    let mut u = StageUsage::default();
    for t in &stage.tables {
        u.add(table_usage(t, ft));
    }
    for a in &stage.arrays {
        u.sram_blocks += (a.size() as usize * 32).div_ceil(SRAM_BLOCK_BITS).max(1);
    }
    // SALUs are per-array hardware; a stage cannot share one SALU across
    // two arrays even if only one table references them.
    u.salus = u.salus.max(stage.arrays.len());
    u
}

/// Validate a stage against its limits (provisioning-time check).
pub fn check_stage(stage: &Stage, ft: &FieldTable) -> SimResult<StageUsage> {
    let u = stage_usage(stage, ft);
    let l = stage.limits;
    let checks: [(&'static str, usize, usize); 6] = [
        ("sram_blocks", u.sram_blocks, l.sram_blocks),
        ("tcam_blocks", u.tcam_blocks, l.tcam_blocks),
        ("vliw_slots", u.vliw_slots, l.vliw_slots),
        ("salus", u.salus, l.salus),
        ("hash_bits", u.hash_bits, l.hash_bits),
        ("ltids", u.ltids, l.ltids),
    ];
    for (name, used, limit) in checks {
        if used > limit {
            return Err(SimError::ResourceExceeded {
                stage: stage.index,
                resource: name,
                used,
                limit,
            });
        }
    }
    Ok(u)
}

/// Whole-chip resource report: the Figure 10 quantity.
#[derive(Debug, Clone, Default)]
pub struct ChipReport {
    /// Phv bits used.
    pub phv_bits_used: usize,
    /// Phv bits total.
    pub phv_bits_total: usize,
    /// Per stage.
    pub per_stage: Vec<(String, StageUsage)>,
    /// Totals.
    pub totals: StageUsage,
    /// Limits total.
    pub limits_total: StageUsage,
    /// Stages with at least one table, per gress — drives the latency model.
    pub active_ingress_stages: usize,
    /// Active egress stages.
    pub active_egress_stages: usize,
}

/// Total PHV container bits available (both gresses of a Tofino-class
/// chip share ~4 Kb of containers per gress).
pub const PHV_TOTAL_BITS: usize = 4096;

impl ChipReport {
    /// Build the report for a provisioned ingress+egress pipeline pair.
    pub fn build(ft: &FieldTable, ingress: &Pipeline, egress: &Pipeline) -> ChipReport {
        let mut report = ChipReport {
            phv_bits_used: ft.container_bits(),
            phv_bits_total: PHV_TOTAL_BITS,
            ..Default::default()
        };
        for pipe in [ingress, egress] {
            for stage in &pipe.stages {
                let u = stage_usage(stage, ft);
                report.totals.add(u);
                let l = stage.limits;
                report.limits_total.add(StageUsage {
                    sram_blocks: l.sram_blocks,
                    tcam_blocks: l.tcam_blocks,
                    vliw_slots: l.vliw_slots,
                    salus: l.salus,
                    hash_bits: l.hash_bits,
                    ltids: l.ltids,
                });
                report
                    .per_stage
                    .push((format!("{} {}", stage.gress, stage.index), u));
                if !stage.tables.is_empty() {
                    match stage.gress {
                        crate::pipeline::Gress::Ingress => report.active_ingress_stages += 1,
                        crate::pipeline::Gress::Egress => report.active_egress_stages += 1,
                    }
                }
            }
        }
        report
    }

    fn pct(used: usize, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            100.0 * used as f64 / total as f64
        }
    }

    /// Percent utilization per resource, in Figure 10's order:
    /// (PHV, hash, SRAM, TCAM, VLIW, SALU, LTID).
    pub fn utilization_pct(&self) -> [f64; 7] {
        [
            Self::pct(self.phv_bits_used, self.phv_bits_total),
            Self::pct(self.totals.hash_bits, self.limits_total.hash_bits),
            Self::pct(self.totals.sram_blocks, self.limits_total.sram_blocks),
            Self::pct(self.totals.tcam_blocks, self.limits_total.tcam_blocks),
            Self::pct(self.totals.vliw_slots, self.limits_total.vliw_slots),
            Self::pct(self.totals.salus, self.limits_total.salus),
            Self::pct(self.totals.ltids, self.limits_total.ltids),
        ]
    }

    /// Resource names matching [`Self::utilization_pct`].
    pub const RESOURCE_NAMES: [&'static str; 7] =
        ["PHV", "Hash", "SRAM", "TCAM", "VLIW", "SALU", "LTID"];
}

impl core::fmt::Display for ChipReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "resource     used / total   util")?;
        let pcts = self.utilization_pct();
        let rows = [
            ("PHV bits", self.phv_bits_used, self.phv_bits_total),
            ("Hash bits", self.totals.hash_bits, self.limits_total.hash_bits),
            ("SRAM blk", self.totals.sram_blocks, self.limits_total.sram_blocks),
            ("TCAM blk", self.totals.tcam_blocks, self.limits_total.tcam_blocks),
            ("VLIW", self.totals.vliw_slots, self.limits_total.vliw_slots),
            ("SALU", self.totals.salus, self.limits_total.salus),
            ("LTID", self.totals.ltids, self.limits_total.ltids),
        ];
        for ((name, used, total), pct) in rows.iter().zip(pcts) {
            writeln!(f, "{name:<10} {used:>6} / {total:<6} {pct:>5.1}%")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionDef;
    use crate::phv::FieldTable;
    use crate::pipeline::{Gress, Stage, StageLimits};
    use crate::salu::RegArray;
    use crate::table::{KeySpec, MatchKind};

    fn ft_with(bits: u8) -> (FieldTable, crate::phv::FieldId) {
        let mut ft = FieldTable::new();
        let f = ft.register("meta.k", bits).unwrap();
        (ft, f)
    }

    #[test]
    fn ternary_table_costs_tcam() {
        let (ft, f) = ft_with(32);
        let t = Table::new(
            "t",
            KeySpec::new(vec![(f, MatchKind::Ternary)]),
            vec![ActionDef::noop("n")],
            2048,
        );
        let u = table_usage(&t, &ft);
        // 32-bit key → 1 block wide; 2048 entries → 4 deep.
        assert_eq!(u.tcam_blocks, 4);
        assert!(u.sram_blocks >= 1, "action data still costs SRAM");
        assert_eq!(u.ltids, 1);
    }

    #[test]
    fn wide_ternary_key_chains_blocks() {
        let mut ft = FieldTable::new();
        let a = ft.register("a", 64).unwrap();
        let b = ft.register("b", 64).unwrap();
        let t = Table::new(
            "t",
            KeySpec::new(vec![(a, MatchKind::Ternary), (b, MatchKind::Ternary)]),
            vec![ActionDef::noop("n")],
            512,
        );
        let u = table_usage(&t, &ft);
        // 128 key bits → 3 blocks wide × 1 deep.
        assert_eq!(u.tcam_blocks, 3);
    }

    #[test]
    fn exact_table_costs_sram_only() {
        let (ft, f) = ft_with(32);
        let t = Table::new(
            "t",
            KeySpec::new(vec![(f, MatchKind::Exact)]),
            vec![ActionDef::noop("n")],
            4096,
        );
        let u = table_usage(&t, &ft);
        assert_eq!(u.tcam_blocks, 0);
        // 4096 × (32+20+128) bits = 737,280 bits → 6 blocks.
        assert_eq!(u.sram_blocks, 6);
    }

    #[test]
    fn register_array_costs_sram() {
        let ft = FieldTable::new();
        let mut stage = Stage::new(Gress::Ingress, 0, StageLimits::default());
        stage.add_array(RegArray::new("m", 65536));
        let u = stage_usage(&stage, &ft);
        // 65536 × 32 bits = 2 Mb → 16 blocks.
        assert_eq!(u.sram_blocks, 16);
        assert_eq!(u.salus, 1);
    }

    #[test]
    fn limits_enforced() {
        let (ft, f) = ft_with(32);
        let mut stage = Stage::new(
            Gress::Ingress,
            3,
            StageLimits { tcam_blocks: 2, ..Default::default() },
        );
        stage.add_table(Table::new(
            "big",
            KeySpec::new(vec![(f, MatchKind::Ternary)]),
            vec![ActionDef::noop("n")],
            2048,
        ));
        let err = check_stage(&stage, &ft).unwrap_err();
        assert!(matches!(
            err,
            SimError::ResourceExceeded { stage: 3, resource: "tcam_blocks", .. }
        ));
    }

    #[test]
    fn chip_report_aggregates_and_percentages() {
        let (ft, f) = ft_with(32);
        let mut ig = Pipeline::new(Gress::Ingress, 2, StageLimits::default());
        let eg = Pipeline::new(Gress::Egress, 2, StageLimits::default());
        ig.stage_mut(0).unwrap().add_table(Table::new(
            "t",
            KeySpec::new(vec![(f, MatchKind::Exact)]),
            vec![ActionDef::noop("n")],
            128,
        ));
        let r = ChipReport::build(&ft, &ig, &eg);
        assert_eq!(r.active_ingress_stages, 1);
        assert_eq!(r.active_egress_stages, 0);
        assert_eq!(r.totals.ltids, 1);
        assert_eq!(r.limits_total.ltids, 4 * 16);
        let pct = r.utilization_pct();
        assert!(pct[6] > 0.0 && pct[6] < 100.0);
        // Display doesn't panic and mentions every resource.
        let s = r.to_string();
        for name in ["PHV", "TCAM", "VLIW", "SALU", "LTID"] {
            assert!(s.contains(name));
        }
    }
}

#[cfg(test)]
mod atcam_tests {
    use super::*;
    use crate::action::ActionDef;
    use crate::phv::FieldTable;
    use crate::table::{KeySpec, MatchKind, Table};

    #[test]
    fn atcam_trades_tcam_for_sram() {
        let mut ft = FieldTable::new();
        let f = ft.register("k", 32).unwrap();
        let key = || KeySpec::new(vec![(f, MatchKind::Ternary)]);
        let tcam = Table::new("t", key(), vec![ActionDef::noop("n")], 4096);
        let atcam = Table::new("t", key(), vec![ActionDef::noop("n")], 4096).with_atcam();
        let u_tcam = table_usage(&tcam, &ft);
        let u_atcam = table_usage(&atcam, &ft);
        assert!(u_tcam.tcam_blocks > 0);
        assert_eq!(u_atcam.tcam_blocks, 0, "algorithmic TCAM burns no TCAM blocks");
        assert!(
            u_atcam.sram_blocks > u_tcam.sram_blocks,
            "…but stores value+mask in SRAM ({} vs {})",
            u_atcam.sram_blocks,
            u_tcam.sram_blocks
        );
    }
}
