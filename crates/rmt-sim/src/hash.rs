//! Hardware hash units.
//!
//! Tofino's hash engines are Galois-field CRC generators with selectable
//! polynomials. The case study in the paper (Figure 13(d)) specifically uses
//! `crc_16_buypass`, `crc_16_mcrf4xx`, `crc_aug_ccitt`, and `crc_16_dds_110`
//! to address the CMS and Bloom-filter rows, and relies on the property that
//! *truncating* a wide uniform hash (the mask step of address translation)
//! has the same collision behaviour as a natively narrower hash. Those exact
//! algorithms are implemented here, parameterized in the Rocksoft model
//! (width / poly / init / refin / refout / xorout), and verified against the
//! standard `"123456789"` check values.

/// A CRC algorithm in the Rocksoft parameter model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrcSpec {
    /// Output width in bits (≤ 32).
    pub width: u8,
    /// Poly.
    pub poly: u32,
    /// Init.
    pub init: u32,
    /// Refin.
    pub refin: bool,
    /// Refout.
    pub refout: bool,
    /// Xorout.
    pub xorout: u32,
}

/// CRC-16/UMTS, known in the Tofino SDE as `crc_16_buypass`.
pub const CRC16_BUYPASS: CrcSpec =
    CrcSpec { width: 16, poly: 0x8005, init: 0x0000, refin: false, refout: false, xorout: 0x0000 };

/// CRC-16/MCRF4XX.
pub const CRC16_MCRF4XX: CrcSpec =
    CrcSpec { width: 16, poly: 0x1021, init: 0xFFFF, refin: true, refout: true, xorout: 0x0000 };

/// CRC-16/SPI-FUJITSU, known in the SDE as `crc_aug_ccitt`.
pub const CRC16_AUG_CCITT: CrcSpec =
    CrcSpec { width: 16, poly: 0x1021, init: 0x1D0F, refin: false, refout: false, xorout: 0x0000 };

/// CRC-16/DDS-110.
pub const CRC16_DDS_110: CrcSpec =
    CrcSpec { width: 16, poly: 0x8005, init: 0x800D, refin: false, refout: false, xorout: 0x0000 };

/// CRC-16/CCITT-FALSE, the SDE default 16-bit hash.
pub const CRC16_CCITT_FALSE: CrcSpec =
    CrcSpec { width: 16, poly: 0x1021, init: 0xFFFF, refin: false, refout: false, xorout: 0x0000 };

/// Standard CRC-32 (ISO-HDLC).
pub const CRC32: CrcSpec = CrcSpec {
    width: 32,
    poly: 0x04C11DB7,
    init: 0xFFFF_FFFF,
    refin: true,
    refout: true,
    xorout: 0xFFFF_FFFF,
};

/// The four algorithms used to address the two CMS rows and two BF rows in
/// the heavy-hitter case study, in the paper's order.
pub const HH_CRC_SET: [CrcSpec; 4] =
    [CRC16_BUYPASS, CRC16_MCRF4XX, CRC16_AUG_CCITT, CRC16_DDS_110];

fn reflect(value: u32, bits: u8) -> u32 {
    let mut out = 0u32;
    for i in 0..bits {
        if value & (1 << i) != 0 {
            out |= 1 << (bits - 1 - i);
        }
    }
    out
}

impl CrcSpec {
    /// Compute the CRC of `data`.
    ///
    /// A straightforward bitwise implementation: the simulator hashes a few
    /// dozen bytes per invocation, so table generation would not pay off,
    /// and the bitwise form mirrors the hardware LFSR directly.
    pub fn compute(&self, data: &[u8]) -> u32 {
        debug_assert!(self.width <= 32 && self.width > 0);
        let width = u32::from(self.width);
        let topbit = 1u32 << (width - 1);
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        let mut crc = self.init & mask;
        for &byte in data {
            let b = if self.refin { reflect(u32::from(byte), 8) as u8 } else { byte };
            crc ^= (u32::from(b)) << (width - 8);
            crc &= mask;
            for _ in 0..8 {
                if crc & topbit != 0 {
                    crc = ((crc << 1) ^ self.poly) & mask;
                } else {
                    crc = (crc << 1) & mask;
                }
            }
        }
        if self.refout {
            crc = reflect(crc, self.width);
        }
        (crc ^ self.xorout) & mask
    }

    /// Compute the CRC and truncate to `out_bits` via the mask step of the
    /// paper's address-translation mechanism (§4.1.2): `crc & (2^out_bits-1)`.
    pub fn compute_masked(&self, data: &[u8], out_bits: u8) -> u32 {
        let mask = if out_bits >= 32 { u32::MAX } else { (1u32 << out_bits) - 1 };
        self.compute(data) & mask
    }
}

/// Accounting record for one hash invocation site in a provisioned pipeline,
/// used by the resource report (hash-unit usage in Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashUse {
    /// Galois-matrix output bits consumed.
    pub output_bits: u8,
    /// Total input bits fed to the unit.
    pub input_bits: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK: &[u8] = b"123456789";

    // Check values from the canonical CRC catalogue (reveng).
    #[test]
    fn buypass_check() {
        assert_eq!(CRC16_BUYPASS.compute(CHECK), 0xFEE8);
    }

    #[test]
    fn mcrf4xx_check() {
        assert_eq!(CRC16_MCRF4XX.compute(CHECK), 0x6F91);
    }

    #[test]
    fn aug_ccitt_check() {
        assert_eq!(CRC16_AUG_CCITT.compute(CHECK), 0xE5CC);
    }

    #[test]
    fn dds_110_check() {
        assert_eq!(CRC16_DDS_110.compute(CHECK), 0x9ECF);
    }

    #[test]
    fn ccitt_false_check() {
        assert_eq!(CRC16_CCITT_FALSE.compute(CHECK), 0x29B1);
    }

    #[test]
    fn crc32_check() {
        assert_eq!(CRC32.compute(CHECK), 0xCBF4_3926);
    }

    #[test]
    fn masked_equals_truncated() {
        // The property the heavy-hitter case study relies on: the mask step
        // is exactly a truncation of the full-width output.
        let full = CRC16_BUYPASS.compute(CHECK);
        assert_eq!(CRC16_BUYPASS.compute_masked(CHECK, 10), full & 0x3FF);
        assert_eq!(CRC16_BUYPASS.compute_masked(CHECK, 32), full);
    }

    #[test]
    fn empty_input_is_init_transform() {
        // CRC of no data is the (reflected, xored) init value.
        let spec = CRC16_BUYPASS;
        assert_eq!(spec.compute(&[]), 0x0000);
        assert_eq!(CRC16_AUG_CCITT.compute(&[]), 0x1D0F);
    }

    #[test]
    fn algorithms_disagree() {
        // The four HH algorithms must behave as independent hash functions.
        let outs: Vec<u32> = HH_CRC_SET.iter().map(|s| s.compute(CHECK)).collect();
        for i in 0..outs.len() {
            for j in (i + 1)..outs.len() {
                assert_ne!(outs[i], outs[j], "algorithms {i} and {j} collide on check input");
            }
        }
    }

    #[test]
    fn reflect_involution() {
        for v in [0u32, 1, 0x8005, 0xFFFF, 0xDEAD] {
            assert_eq!(reflect(reflect(v, 16), 16), v & 0xFFFF);
        }
    }

    #[test]
    fn masked_distribution_is_roughly_uniform() {
        // Hash 4096 synthetic five-tuple-ish keys into 256 buckets and make
        // sure no bucket is pathologically loaded (the property Figure 13(d)
        // depends on).
        let mut counts = [0u32; 256];
        for i in 0u32..4096 {
            let data = i.to_be_bytes();
            let h = CRC16_MCRF4XX.compute_masked(&data, 8) as usize;
            counts[h] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max <= 40, "bucket overload: {max}");
        assert!(min >= 2, "bucket starvation: {min}");
    }
}
