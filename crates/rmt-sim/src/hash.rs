//! Hardware hash units.
//!
//! Tofino's hash engines are Galois-field CRC generators with selectable
//! polynomials. The case study in the paper (Figure 13(d)) specifically uses
//! `crc_16_buypass`, `crc_16_mcrf4xx`, `crc_aug_ccitt`, and `crc_16_dds_110`
//! to address the CMS and Bloom-filter rows, and relies on the property that
//! *truncating* a wide uniform hash (the mask step of address translation)
//! has the same collision behaviour as a natively narrower hash. Those exact
//! algorithms are implemented here, parameterized in the Rocksoft model
//! (width / poly / init / refin / refout / xorout), and verified against the
//! standard `"123456789"` check values.

/// A CRC algorithm in the Rocksoft parameter model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrcSpec {
    /// Output width in bits (≤ 32).
    pub width: u8,
    /// Poly.
    pub poly: u32,
    /// Init.
    pub init: u32,
    /// Refin.
    pub refin: bool,
    /// Refout.
    pub refout: bool,
    /// Xorout.
    pub xorout: u32,
}

/// CRC-16/UMTS, known in the Tofino SDE as `crc_16_buypass`.
pub const CRC16_BUYPASS: CrcSpec =
    CrcSpec { width: 16, poly: 0x8005, init: 0x0000, refin: false, refout: false, xorout: 0x0000 };

/// CRC-16/MCRF4XX.
pub const CRC16_MCRF4XX: CrcSpec =
    CrcSpec { width: 16, poly: 0x1021, init: 0xFFFF, refin: true, refout: true, xorout: 0x0000 };

/// CRC-16/SPI-FUJITSU, known in the SDE as `crc_aug_ccitt`.
pub const CRC16_AUG_CCITT: CrcSpec =
    CrcSpec { width: 16, poly: 0x1021, init: 0x1D0F, refin: false, refout: false, xorout: 0x0000 };

/// CRC-16/DDS-110.
pub const CRC16_DDS_110: CrcSpec =
    CrcSpec { width: 16, poly: 0x8005, init: 0x800D, refin: false, refout: false, xorout: 0x0000 };

/// CRC-16/CCITT-FALSE, the SDE default 16-bit hash.
pub const CRC16_CCITT_FALSE: CrcSpec =
    CrcSpec { width: 16, poly: 0x1021, init: 0xFFFF, refin: false, refout: false, xorout: 0x0000 };

/// Standard CRC-32 (ISO-HDLC).
pub const CRC32: CrcSpec = CrcSpec {
    width: 32,
    poly: 0x04C11DB7,
    init: 0xFFFF_FFFF,
    refin: true,
    refout: true,
    xorout: 0xFFFF_FFFF,
};

/// The four algorithms used to address the two CMS rows and two BF rows in
/// the heavy-hitter case study, in the paper's order.
pub const HH_CRC_SET: [CrcSpec; 4] =
    [CRC16_BUYPASS, CRC16_MCRF4XX, CRC16_AUG_CCITT, CRC16_DDS_110];

fn reflect(value: u32, bits: u8) -> u32 {
    let mut out = 0u32;
    for i in 0..bits {
        if value & (1 << i) != 0 {
            out |= 1 << (bits - 1 - i);
        }
    }
    out
}

/// Byte-at-a-time CRC step table for an MSB-first LFSR of the given width
/// and polynomial, built at compile time.
const fn make_crc_table(width: u8, poly: u32) -> [u32; 256] {
    let topbit = 1u32 << (width - 1);
    let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = (i as u32) << (width - 8);
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & topbit != 0 { ((crc << 1) ^ poly) & mask } else { (crc << 1) & mask };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Bit-reversal of a byte, for `refin` algorithms.
const fn make_reflect8_table() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut out = 0u8;
        let mut bit = 0;
        while bit < 8 {
            if i & (1 << bit) != 0 {
                out |= 1 << (7 - bit);
            }
            bit += 1;
        }
        table[i] = out;
        i += 1;
    }
    table
}

const REFLECT8: [u8; 256] = make_reflect8_table();

// The hash engines sit on the per-packet hot path (every sketch update and
// memory-address translation goes through one), so the known polynomials
// get compile-time byte tables; an exotic spec falls back to the bitwise
// LFSR below, which remains the semantic definition.
const TABLE_16_8005: [u32; 256] = make_crc_table(16, 0x8005);
const TABLE_16_1021: [u32; 256] = make_crc_table(16, 0x1021);
const TABLE_32_04C11DB7: [u32; 256] = make_crc_table(32, 0x04C11DB7);

fn crc_table_for(width: u8, poly: u32) -> Option<&'static [u32; 256]> {
    match (width, poly) {
        (16, 0x8005) => Some(&TABLE_16_8005),
        (16, 0x1021) => Some(&TABLE_16_1021),
        (32, 0x04C11DB7) => Some(&TABLE_32_04C11DB7),
        _ => None,
    }
}

impl CrcSpec {
    /// Compute the CRC of `data`.
    ///
    /// Byte-table-driven for the polynomials the workspace provisions
    /// (verified bit-identical to the LFSR by the check-value tests); the
    /// bitwise form below handles any other spec and mirrors the hardware
    /// LFSR directly.
    pub fn compute(&self, data: &[u8]) -> u32 {
        debug_assert!(self.width <= 32 && self.width > 0);
        let width = u32::from(self.width);
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        let mut crc = self.init & mask;
        if let Some(table) = crc_table_for(self.width, self.poly) {
            for &byte in data {
                let b = if self.refin { REFLECT8[usize::from(byte)] } else { byte };
                let idx = ((crc >> (width - 8)) as u8) ^ b;
                crc = ((crc << 8) ^ table[usize::from(idx)]) & mask;
            }
        } else {
            let topbit = 1u32 << (width - 1);
            for &byte in data {
                let b = if self.refin { reflect(u32::from(byte), 8) as u8 } else { byte };
                crc ^= (u32::from(b)) << (width - 8);
                crc &= mask;
                for _ in 0..8 {
                    if crc & topbit != 0 {
                        crc = ((crc << 1) ^ self.poly) & mask;
                    } else {
                        crc = (crc << 1) & mask;
                    }
                }
            }
        }
        if self.refout {
            crc = reflect(crc, self.width);
        }
        (crc ^ self.xorout) & mask
    }

    /// Compute the CRC and truncate to `out_bits` via the mask step of the
    /// paper's address-translation mechanism (§4.1.2): `crc & (2^out_bits-1)`.
    pub fn compute_masked(&self, data: &[u8], out_bits: u8) -> u32 {
        let mask = if out_bits >= 32 { u32::MAX } else { (1u32 << out_bits) - 1 };
        self.compute(data) & mask
    }
}

/// Accounting record for one hash invocation site in a provisioned pipeline,
/// used by the resource report (hash-unit usage in Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashUse {
    /// Galois-matrix output bits consumed.
    pub output_bits: u8,
    /// Total input bits fed to the unit.
    pub input_bits: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK: &[u8] = b"123456789";

    // Check values from the canonical CRC catalogue (reveng).
    #[test]
    fn buypass_check() {
        assert_eq!(CRC16_BUYPASS.compute(CHECK), 0xFEE8);
    }

    #[test]
    fn mcrf4xx_check() {
        assert_eq!(CRC16_MCRF4XX.compute(CHECK), 0x6F91);
    }

    #[test]
    fn aug_ccitt_check() {
        assert_eq!(CRC16_AUG_CCITT.compute(CHECK), 0xE5CC);
    }

    #[test]
    fn dds_110_check() {
        assert_eq!(CRC16_DDS_110.compute(CHECK), 0x9ECF);
    }

    #[test]
    fn ccitt_false_check() {
        assert_eq!(CRC16_CCITT_FALSE.compute(CHECK), 0x29B1);
    }

    #[test]
    fn crc32_check() {
        assert_eq!(CRC32.compute(CHECK), 0xCBF4_3926);
    }

    #[test]
    fn masked_equals_truncated() {
        // The property the heavy-hitter case study relies on: the mask step
        // is exactly a truncation of the full-width output.
        let full = CRC16_BUYPASS.compute(CHECK);
        assert_eq!(CRC16_BUYPASS.compute_masked(CHECK, 10), full & 0x3FF);
        assert_eq!(CRC16_BUYPASS.compute_masked(CHECK, 32), full);
    }

    #[test]
    fn empty_input_is_init_transform() {
        // CRC of no data is the (reflected, xored) init value.
        let spec = CRC16_BUYPASS;
        assert_eq!(spec.compute(&[]), 0x0000);
        assert_eq!(CRC16_AUG_CCITT.compute(&[]), 0x1D0F);
    }

    #[test]
    fn algorithms_disagree() {
        // The four HH algorithms must behave as independent hash functions.
        let outs: Vec<u32> = HH_CRC_SET.iter().map(|s| s.compute(CHECK)).collect();
        for i in 0..outs.len() {
            for j in (i + 1)..outs.len() {
                assert_ne!(outs[i], outs[j], "algorithms {i} and {j} collide on check input");
            }
        }
    }

    #[test]
    fn table_path_matches_lfsr() {
        // The compile-time byte tables must be bit-identical to the bitwise
        // LFSR for every provisioned algorithm, across lengths and offsets.
        fn lfsr(spec: &CrcSpec, data: &[u8]) -> u32 {
            let width = u32::from(spec.width);
            let topbit = 1u32 << (width - 1);
            let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
            let mut crc = spec.init & mask;
            for &byte in data {
                let b = if spec.refin { reflect(u32::from(byte), 8) as u8 } else { byte };
                crc ^= u32::from(b) << (width - 8);
                crc &= mask;
                for _ in 0..8 {
                    crc = if crc & topbit != 0 {
                        ((crc << 1) ^ spec.poly) & mask
                    } else {
                        (crc << 1) & mask
                    };
                }
            }
            if spec.refout {
                crc = reflect(crc, spec.width);
            }
            (crc ^ spec.xorout) & mask
        }
        let data: Vec<u8> = (0u32..64).map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8).collect();
        for spec in [
            CRC16_BUYPASS,
            CRC16_MCRF4XX,
            CRC16_AUG_CCITT,
            CRC16_DDS_110,
            CRC16_CCITT_FALSE,
            CRC32,
        ] {
            for len in [0usize, 1, 4, 13, 64] {
                assert_eq!(spec.compute(&data[..len]), lfsr(&spec, &data[..len]), "{spec:?}/{len}");
            }
        }
    }

    #[test]
    fn unknown_poly_uses_lfsr_fallback() {
        let odd = CrcSpec {
            width: 16,
            poly: 0x3D65,
            init: 0,
            refin: false,
            refout: false,
            xorout: 0xFFFF,
        };
        // CRC-16/DNP check value (reveng catalogue; refin/refout stripped
        // variants differ, so just require determinism + masking here).
        let h = odd.compute(CHECK);
        assert_eq!(h, odd.compute(CHECK));
        assert!(h <= 0xFFFF);
    }

    #[test]
    fn reflect_involution() {
        for v in [0u32, 1, 0x8005, 0xFFFF, 0xDEAD] {
            assert_eq!(reflect(reflect(v, 16), 16), v & 0xFFFF);
        }
    }

    #[test]
    fn masked_distribution_is_roughly_uniform() {
        // Hash 4096 synthetic five-tuple-ish keys into 256 buckets and make
        // sure no bucket is pathologically loaded (the property Figure 13(d)
        // depends on).
        let mut counts = [0u32; 256];
        for i in 0u32..4096 {
            let data = i.to_be_bytes();
            let h = CRC16_MCRF4XX.compute_masked(&data, 8) as usize;
            counts[h] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max <= 40, "bucket overload: {max}");
        assert!(min >= 2, "bucket starvation: {min}");
    }
}
