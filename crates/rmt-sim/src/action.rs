//! Action definitions: the VLIW micro-programs tables execute on a match.
//!
//! An RMT action is a very long instruction word — a set of per-container
//! ALU operations issued in parallel — optionally accompanied by one hash
//! computation and one stateful-ALU call. The simulator reproduces the
//! parallel-issue semantics: every operand is read from the *pre-action*
//! PHV, all writes land together. The paper's VLIW-capacity constraint
//! (§4.2) is enforced by counting each registered [`ActionDef`]'s
//! instruction slots against the per-stage budget at provisioning time.

use crate::hash::CrcSpec;
use crate::phv::{FieldId, FieldTable, Phv};
use crate::salu::{RegArray, SaluInstr};
use crate::error::{SimError, SimResult};

/// An ALU operand: an immediate, a PHV field, or a slot of the entry's
/// action data (how one pre-installed action serves many entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Const.
    Const(u64),
    /// Field.
    Field(FieldId),
    /// Index into the entry's action-data vector.
    Arg(usize),
}

/// Functions of the per-container PHV ALUs. `Set` ignores `b`; the rest
/// compute `a ⊕ b`. `Not` computes `!a` (masked to the destination width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluFunc {
    /// Set.
    Set,
    /// Add.
    Add,
    /// Sub.
    Sub,
    /// And.
    And,
    /// Or.
    Or,
    /// Xor.
    Xor,
    /// Min.
    Min,
    /// Max.
    Max,
    /// Not.
    Not,
}

/// One VLIW slot: `dst = func(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VliwOp {
    /// Dst.
    pub dst: FieldId,
    /// Func.
    pub func: AluFunc,
    /// A.
    pub a: Operand,
    /// B.
    pub b: Operand,
}

impl VliwOp {
    /// Set.
    pub fn set(dst: FieldId, src: Operand) -> VliwOp {
        VliwOp { dst, func: AluFunc::Set, a: src, b: Operand::Const(0) }
    }
}

/// What a hash call feeds into the CRC engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HashInput {
    /// Concatenate the listed fields' values, each serialized big-endian to
    /// its byte-rounded width. The five-tuple hash is this with the five
    /// canonical fields in order (13 bytes total).
    Fields(Vec<FieldId>),
}

/// One hash-engine invocation within an action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashCall {
    /// Spec.
    pub spec: CrcSpec,
    /// Input.
    pub input: HashInput,
    /// Dst.
    pub dst: FieldId,
    /// Mask applied to the output *inside the same action* — the paper's
    /// address-translation mask step, fused with the hash so an overflowed
    /// output is never visible to later primitives (§4.1.2).
    pub mask: Option<Operand>,
}

/// One SALU invocation within an action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaluCall {
    /// Index of the register array within the executing stage.
    pub array: usize,
    /// Bucket address source (the translated physical address field).
    pub addr: Operand,
    /// The value operand fed to the SALU (usually the `sar` field).
    pub operand: Operand,
    /// Primary instruction.
    pub instr: SaluInstr,
    /// Alternate instruction, selected when `select_flag` reads non-zero —
    /// the paper's "SALU flag" mechanism for doubling the memory-operation
    /// repertoire (§4.1.2).
    pub alt_instr: Option<SaluInstr>,
    /// Select flag.
    pub select_flag: Option<FieldId>,
    /// Where the SALU output lands (usually `sar`).
    pub output: Option<FieldId>,
}

/// Observable side effects of one action execution, reported so the
/// telemetry layer can count SALU activity without the SALU knowing about
/// recorders.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActionEffects {
    /// A SALU read-modify-write cycle ran (memory was read).
    pub salu_read: bool,
    /// The SALU cycle committed a memory write.
    pub salu_wrote: bool,
}

/// Reusable buffers for [`ActionDef::execute_scratch`]: the deferred
/// parallel-issue write set and the hash input bytes. Owning one per stage
/// keeps the match-action loop free of per-execution heap allocation.
#[derive(Debug, Clone, Default)]
pub struct ActionScratch {
    writes: Vec<(FieldId, u64)>,
    hash_bytes: Vec<u8>,
}

/// A complete action definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionDef {
    /// Human-readable name.
    pub name: String,
    /// Ops.
    pub ops: Vec<VliwOp>,
    /// Hash.
    pub hash: Option<HashCall>,
    /// Salu.
    pub salu: Option<SaluCall>,
}

impl ActionDef {
    /// Noop.
    pub fn noop(name: impl Into<String>) -> ActionDef {
        ActionDef { name: name.into(), ops: vec![], hash: None, salu: None }
    }

    /// VLIW instruction slots this action consumes (the Figure 10 "VLIW"
    /// resource): one per ALU op, one for a hash mask, one for SALU issue.
    pub fn vliw_slots(&self) -> usize {
        self.ops.len()
            + self.hash.as_ref().map_or(0, |h| 1 + usize::from(h.mask.is_some()))
            + usize::from(self.salu.is_some())
    }

    /// Execute this action with parallel-issue semantics.
    ///
    /// All operands are read from the PHV as it was when the action started;
    /// all destination writes are applied afterwards. If several slots write
    /// the same destination the *last* listed wins (matching the simulator's
    /// deterministic tie-break; real hardware forbids such programs).
    pub fn execute(
        &self,
        table: &FieldTable,
        phv: &mut Phv,
        data: &[u64],
        arrays: &mut [RegArray],
    ) -> SimResult<ActionEffects> {
        self.execute_scratch(table, phv, data, arrays, &mut ActionScratch::default())
    }

    /// [`ActionDef::execute`] with caller-owned scratch buffers, so repeated
    /// executions (every table of every stage, every pass) allocate nothing.
    pub fn execute_scratch(
        &self,
        table: &FieldTable,
        phv: &mut Phv,
        data: &[u64],
        arrays: &mut [RegArray],
        scratch: &mut ActionScratch,
    ) -> SimResult<ActionEffects> {
        let mut effects = ActionEffects::default();
        let read = |phv: &Phv, op: Operand| -> u64 {
            match op {
                Operand::Const(c) => c,
                Operand::Field(f) => phv.get(f),
                Operand::Arg(i) => data.get(i).copied().unwrap_or(0),
            }
        };

        let writes = &mut scratch.writes;
        writes.clear();

        if let Some(hash) = &self.hash {
            let HashInput::Fields(fields) = &hash.input;
            let bytes = &mut scratch.hash_bytes;
            bytes.clear();
            for f in fields {
                let spec = table.spec(*f);
                let nbytes = usize::from(spec.bits.div_ceil(8));
                let v = phv.get(*f);
                bytes.extend_from_slice(&v.to_be_bytes()[8 - nbytes..]);
            }
            let mut h = u64::from(hash.spec.compute(bytes));
            if let Some(m) = hash.mask {
                h &= read(phv, m);
            }
            writes.push((hash.dst, h));
        }

        for op in &self.ops {
            let a = read(phv, op.a);
            let b = read(phv, op.b);
            let width_mask = table.spec(op.dst).mask();
            let v = match op.func {
                AluFunc::Set => a,
                AluFunc::Add => a.wrapping_add(b),
                AluFunc::Sub => a.wrapping_sub(b),
                AluFunc::And => a & b,
                AluFunc::Or => a | b,
                AluFunc::Xor => a ^ b,
                AluFunc::Min => a.min(b),
                AluFunc::Max => a.max(b),
                AluFunc::Not => !a,
            } & width_mask;
            writes.push((op.dst, v));
        }

        if let Some(salu) = &self.salu {
            let addr = read(phv, salu.addr) as u32;
            let operand = read(phv, salu.operand) as u32;
            let instr = match (salu.alt_instr, salu.select_flag) {
                (Some(alt), Some(flag)) if phv.get(flag) != 0 => alt,
                _ => salu.instr,
            };
            let array = arrays
                .get_mut(salu.array)
                .ok_or_else(|| SimError::NoSuchRegArray(format!("array index {}", salu.array)))?;
            let mem = array.read(addr)?;
            effects.salu_read = true;
            let (new_mem, out) = instr.execute(mem, operand);
            if new_mem != mem {
                array.write(addr, new_mem)?;
                effects.salu_wrote = true;
            }
            if let (Some(dst), Some(v)) = (salu.output, out) {
                writes.push((dst, u64::from(v)));
            }
        }

        for &(dst, v) in writes.iter() {
            phv.set(table, dst, v);
        }
        Ok(effects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::salu::{SaluCond, SaluExpr, SaluOutput};

    fn setup() -> (FieldTable, FieldId, FieldId, FieldId) {
        let mut t = FieldTable::new();
        let x = t.register("meta.x", 32).unwrap();
        let y = t.register("meta.y", 32).unwrap();
        let z = t.register("meta.z", 32).unwrap();
        (t, x, y, z)
    }

    #[test]
    fn parallel_issue_reads_pre_action_state() {
        // A classic swap: x=y and y=x in one VLIW must exchange values.
        let (t, x, y, _) = setup();
        let mut phv = Phv::new(&t);
        phv.set(&t, x, 1);
        phv.set(&t, y, 2);
        let act = ActionDef {
            name: "swap".into(),
            ops: vec![
                VliwOp::set(x, Operand::Field(y)),
                VliwOp::set(y, Operand::Field(x)),
            ],
            hash: None,
            salu: None,
        };
        act.execute(&t, &mut phv, &[], &mut []).unwrap();
        assert_eq!((phv.get(x), phv.get(y)), (2, 1));
    }

    #[test]
    fn action_data_operands() {
        let (t, x, _, _) = setup();
        let mut phv = Phv::new(&t);
        phv.set(&t, x, 10);
        let act = ActionDef {
            name: "addi".into(),
            ops: vec![VliwOp { dst: x, func: AluFunc::Add, a: Operand::Field(x), b: Operand::Arg(0) }],
            hash: None,
            salu: None,
        };
        act.execute(&t, &mut phv, &[32], &mut []).unwrap();
        assert_eq!(phv.get(x), 42);
    }

    #[test]
    fn alu_functions() {
        let (t, x, y, z) = setup();
        let mut phv = Phv::new(&t);
        phv.set(&t, x, 0b1100);
        phv.set(&t, y, 0b1010);
        for (func, expect) in [
            (AluFunc::And, 0b1000u64),
            (AluFunc::Or, 0b1110),
            (AluFunc::Xor, 0b0110),
            (AluFunc::Min, 0b1010),
            (AluFunc::Max, 0b1100),
            (AluFunc::Add, 0b10110),
        ] {
            let act = ActionDef {
                name: "f".into(),
                ops: vec![VliwOp { dst: z, func, a: Operand::Field(x), b: Operand::Field(y) }],
                hash: None,
                salu: None,
            };
            act.execute(&t, &mut phv, &[], &mut []).unwrap();
            assert_eq!(phv.get(z), expect, "{func:?}");
        }
    }

    #[test]
    fn not_masks_to_width() {
        let (t, x, _, _) = setup();
        let mut phv = Phv::new(&t);
        phv.set(&t, x, 0);
        let act = ActionDef {
            name: "not".into(),
            ops: vec![VliwOp { dst: x, func: AluFunc::Not, a: Operand::Field(x), b: Operand::Const(0) }],
            hash: None,
            salu: None,
        };
        act.execute(&t, &mut phv, &[], &mut []).unwrap();
        assert_eq!(phv.get(x), 0xffff_ffff, "NOT of 32-bit field stays 32-bit");
    }

    #[test]
    fn hash_call_with_fused_mask() {
        let (t, x, y, _) = setup();
        let mut phv = Phv::new(&t);
        phv.set(&t, x, 0xDEADBEEF);
        let act = ActionDef {
            name: "hash".into(),
            ops: vec![],
            hash: Some(HashCall {
                spec: crate::hash::CRC16_BUYPASS,
                input: HashInput::Fields(vec![x]),
                dst: y,
                mask: Some(Operand::Const(0x3ff)),
            }),
            salu: None,
        };
        act.execute(&t, &mut phv, &[], &mut []).unwrap();
        let expect =
            u64::from(crate::hash::CRC16_BUYPASS.compute(&0xDEADBEEFu32.to_be_bytes())) & 0x3ff;
        assert_eq!(phv.get(y), expect);
    }

    #[test]
    fn salu_call_updates_memory_and_phv() {
        let (t, x, y, _) = setup();
        let mut phv = Phv::new(&t);
        phv.set(&t, x, 3); // address
        phv.set(&t, y, 40); // operand
        let mut arrays = vec![RegArray::new("m", 8)];
        arrays[0].write(3, 2).unwrap();
        let act = ActionDef {
            name: "memadd".into(),
            ops: vec![],
            hash: None,
            salu: Some(SaluCall {
                array: 0,
                addr: Operand::Field(x),
                operand: Operand::Field(y),
                instr: SaluInstr {
                    cond: SaluCond::Always,
                    update_true: Some(SaluExpr::MemPlusOp),
                    update_false: None,
                    output: SaluOutput::NewMem,
                },
                alt_instr: None,
                select_flag: None,
                output: Some(y),
            }),
        };
        act.execute(&t, &mut phv, &[], &mut arrays).unwrap();
        assert_eq!(arrays[0].read(3).unwrap(), 42);
        assert_eq!(phv.get(y), 42);
    }

    #[test]
    fn salu_flag_selects_alternate_instr() {
        let (t, x, y, z) = setup();
        let mut phv = Phv::new(&t);
        phv.set(&t, x, 0); // address
        phv.set(&t, y, 7); // operand
        let mut arrays = vec![RegArray::new("m", 4)];
        let mk = |flag_val: u64| {
            let mut p = phv.clone();
            p.set(&t, z, flag_val);
            p
        };
        let act = ActionDef {
            name: "rw".into(),
            ops: vec![],
            hash: None,
            salu: Some(SaluCall {
                array: 0,
                addr: Operand::Field(x),
                operand: Operand::Field(y),
                instr: SaluInstr::READ,
                alt_instr: Some(SaluInstr::WRITE),
                select_flag: Some(z),
                output: Some(y),
            }),
        };
        // flag = 1 → WRITE path.
        let mut p = mk(1);
        act.execute(&t, &mut p, &[], &mut arrays).unwrap();
        assert_eq!(arrays[0].read(0).unwrap(), 7);
        // flag = 0 → READ path (no mutation).
        let epoch = arrays[0].write_epoch;
        let mut p = mk(0);
        p.set(&t, y, 99);
        act.execute(&t, &mut p, &[], &mut arrays).unwrap();
        assert_eq!(arrays[0].write_epoch, epoch);
        assert_eq!(p.get(y), 7, "READ output lands in operand field");
    }

    #[test]
    fn salu_out_of_range_is_error() {
        let (t, x, y, _) = setup();
        let mut phv = Phv::new(&t);
        phv.set(&t, x, 100);
        let mut arrays = vec![RegArray::new("m", 4)];
        let act = ActionDef {
            name: "r".into(),
            ops: vec![],
            hash: None,
            salu: Some(SaluCall {
                array: 0,
                addr: Operand::Field(x),
                operand: Operand::Field(y),
                instr: SaluInstr::READ,
                alt_instr: None,
                select_flag: None,
                output: Some(y),
            }),
        };
        assert!(act.execute(&t, &mut phv, &[], &mut arrays).is_err());
    }

    #[test]
    fn vliw_slot_accounting() {
        let (t, x, y, _) = setup();
        let _ = t;
        let act = ActionDef {
            name: "a".into(),
            ops: vec![VliwOp::set(x, Operand::Const(1)), VliwOp::set(y, Operand::Const(2))],
            hash: Some(HashCall {
                spec: crate::hash::CRC16_BUYPASS,
                input: HashInput::Fields(vec![x]),
                dst: y,
                mask: Some(Operand::Const(3)),
            }),
            salu: None,
        };
        // 2 ALU ops + hash (1) + fused mask (1).
        assert_eq!(act.vliw_slots(), 4);
        assert_eq!(ActionDef::noop("n").vliw_slots(), 0);
    }
}
