//! The traffic manager: forwarding verdicts and the recirculation
//! bandwidth/latency model.
//!
//! The traffic manager sits between the ingress and egress pipelines. It
//! reads the intrinsic metadata the ingress pipeline produced and decides
//! the packet's fate. This is why the paper restricts forwarding primitives
//! to ingress RPBs (allocation constraint (4) in §4.3): by the time a
//! packet reaches egress, the verdict has been consumed.

use crate::clock::{Bandwidth, Nanos};
use crate::phv::{FieldTable, Phv};

/// The traffic manager's decision for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Send to the given egress port.
    Forward(u16),
    /// Reflect out the ingress port (`RETURN`).
    Return,
    /// Drop.
    Drop,
    /// Send around for another pipeline pass.
    Recirculate,
    /// Replicate to every port of a multicast group.
    Multicast(u16),
}

/// Verdict plus the report side effect (`REPORT` copies to the CPU port and
/// lets the packet continue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmDecision {
    /// Verdict.
    pub verdict: Verdict,
    /// Report copy.
    pub report_copy: bool,
}

/// Resolve the intrinsic metadata into a decision.
///
/// Priority: recirculate > drop > return > forward. Recirculation wins
/// over an already-taken drop/return verdict because a multi-pass program
/// may mark its verdict early (e.g. the cache-write `DROP`) while later
/// passes still have work to do — the flags ride in the recirculation
/// header and apply on the final pass. A packet with no explicit egress
/// spec is dropped (no default route in the fabric).
pub fn decide(ft: &FieldTable, phv: &Phv) -> TmDecision {
    let intr = ft.intrinsics();
    let report_copy = phv.get(intr.report_flag) != 0;
    let verdict = if phv.get(intr.recirc_flag) != 0 {
        Verdict::Recirculate
    } else if phv.get(intr.drop_flag) != 0 {
        Verdict::Drop
    } else if phv.get(intr.return_flag) != 0 {
        Verdict::Return
    } else if phv.get(intr.mcast_group) != 0 {
        Verdict::Multicast(phv.get(intr.mcast_group) as u16)
    } else if phv.get(intr.egress_valid) != 0 {
        Verdict::Forward(phv.get(intr.egress_spec) as u16)
    } else {
        Verdict::Drop
    };
    TmDecision { verdict, report_copy }
}

/// Analytic model of recirculation overhead, reproducing Figure 11.
///
/// Recirculated packets traverse a loopback port of fixed capacity carrying
/// the P4runpro state header. On the internal path the Ethernet FCS is not
/// carried, so the net wire overhead per pass is `header_len - 4` bytes.
/// The maximum lossless external throughput follows from the recirculation
/// port being the bottleneck; the RTT increase follows from per-pass
/// pipeline and serialization latency on top of an end-host-dominated base
/// RTT (the paper measures RTT from a server across its kernel stack,
/// which is why its absolute numbers are in milliseconds).
#[derive(Debug, Clone, Copy)]
pub struct RecircModel {
    /// External port rate.
    pub port: Bandwidth,
    /// Recirculation port capacity (one loopback port on the prototype).
    pub recirc: Bandwidth,
    /// State-header length in bytes.
    pub header_len: usize,
    /// Bytes of the header not charged on the internal wire (FCS reuse).
    pub fcs_reuse: usize,
    /// Base RTT of the measurement path (end-host software dominated).
    pub base_rtt: Nanos,
    /// Fixed per-pass latency: pipeline traversal + TM queueing.
    pub per_pass_fixed: Nanos,
    /// Effective serialization rate for the store-and-forward hop each
    /// pass adds (slower than line rate: the recirculation path is a
    /// single 100G MAC shared with its own scheduling overhead).
    pub per_pass_rate: Bandwidth,
}

impl Default for RecircModel {
    fn default() -> Self {
        RecircModel {
            port: Bandwidth::from_gbps(100.0),
            recirc: Bandwidth::from_gbps(100.0),
            header_len: netpkt::RECIRC_HEADER_LEN,
            fcs_reuse: 4,
            base_rtt: Nanos::from_micros(21_000), // 21 ms software RTT
            per_pass_fixed: Nanos::from_micros(75),
            per_pass_rate: Bandwidth::from_mbps(80.0),
        }
    }
}

impl RecircModel {
    /// Net wire overhead per recirculation pass, bytes.
    pub fn wire_overhead(&self) -> usize {
        self.header_len.saturating_sub(self.fcs_reuse)
    }

    /// Maximum external throughput without loss for packets of `pkt_size`
    /// bytes making `iterations` recirculation passes.
    pub fn max_lossless_throughput(&self, pkt_size: usize, iterations: u8) -> Bandwidth {
        if iterations == 0 {
            return self.port;
        }
        // Each external packet of S bytes consumes `iterations` slots of
        // (S + overhead) bytes on the recirculation port.
        let per_pkt_recirc_bytes = (pkt_size + self.wire_overhead()) * usize::from(iterations);
        let max = self.recirc.0 * pkt_size as f64 / per_pkt_recirc_bytes as f64;
        Bandwidth(max.min(self.port.0))
    }

    /// Fractional throughput loss at full offered load (Figure 11's
    /// "throughput loss" series).
    pub fn throughput_loss(&self, pkt_size: usize, iterations: u8) -> f64 {
        1.0 - self.max_lossless_throughput(pkt_size, iterations).0 / self.port.0
    }

    /// Added one-way latency for `iterations` passes.
    pub fn added_latency(&self, pkt_size: usize, iterations: u8) -> Nanos {
        let per_pass = self.per_pass_fixed
            + self.per_pass_rate.serialize(pkt_size + self.wire_overhead());
        Nanos(per_pass.0 * u64::from(iterations))
    }

    /// RTT normalized by the no-recirculation RTT (Figure 11's RTT series).
    pub fn normalized_rtt(&self, pkt_size: usize, iterations: u8) -> f64 {
        let base = self.base_rtt.0 as f64;
        (base + self.added_latency(pkt_size, iterations).0 as f64) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::FieldTable;

    #[test]
    fn verdict_priority() {
        let ft = FieldTable::new();
        let intr = ft.intrinsics();
        let mut phv = Phv::new(&ft);
        // Nothing set → drop.
        assert_eq!(decide(&ft, &phv).verdict, Verdict::Drop);
        phv.set(&ft, intr.egress_spec, 5);
        assert_eq!(decide(&ft, &phv).verdict, Verdict::Drop, "port without valid bit");
        phv.set(&ft, intr.egress_valid, 1);
        assert_eq!(decide(&ft, &phv).verdict, Verdict::Forward(5));
        phv.set(&ft, intr.return_flag, 1);
        assert_eq!(decide(&ft, &phv).verdict, Verdict::Return);
        phv.set(&ft, intr.drop_flag, 1);
        assert_eq!(decide(&ft, &phv).verdict, Verdict::Drop);
        phv.set(&ft, intr.recirc_flag, 1);
        assert_eq!(decide(&ft, &phv).verdict, Verdict::Recirculate,
            "recirculation outranks an early drop verdict");
    }

    #[test]
    fn report_is_a_side_effect() {
        let ft = FieldTable::new();
        let intr = ft.intrinsics();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, intr.egress_spec, 3);
        phv.set(&ft, intr.egress_valid, 1);
        phv.set(&ft, intr.report_flag, 1);
        let d = decide(&ft, &phv);
        assert!(d.report_copy);
        assert_eq!(d.verdict, Verdict::Forward(3));
    }

    #[test]
    fn no_recirc_no_loss() {
        let m = RecircModel::default();
        assert_eq!(m.throughput_loss(128, 0), 0.0);
        assert_eq!(m.added_latency(1500, 0), Nanos::ZERO);
        assert!((m.normalized_rtt(1500, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_iteration_loss_band_matches_paper() {
        // Paper: with R = 1 the loss ranges 1%–10% depending on packet
        // size, small packets losing more.
        let m = RecircModel::default();
        let small = m.throughput_loss(128, 1);
        let large = m.throughput_loss(1500, 1);
        assert!(small > large);
        assert!((0.01..=0.12).contains(&small), "128B loss {small}");
        assert!((0.001..=0.02).contains(&large), "1500B loss {large}");
    }

    #[test]
    fn loss_grows_with_iterations() {
        let m = RecircModel::default();
        let mut prev = 0.0;
        for r in 0..=6u8 {
            let loss = m.throughput_loss(512, r);
            assert!(loss >= prev);
            prev = loss;
        }
        // Two passes at least halve the lossless rate.
        assert!(m.max_lossless_throughput(512, 2).0 <= m.port.0 / 2.0 * 1.05);
    }

    #[test]
    fn latency_band_matches_paper_at_r6() {
        // Paper: 0.5–1.5 ms added at R = 6 (2.2%–7.2% RTT growth).
        let m = RecircModel::default();
        let small = m.added_latency(128, 6).as_millis_f64();
        let large = m.added_latency(1500, 6).as_millis_f64();
        assert!((0.4..=1.0).contains(&small), "128B added {small}ms");
        assert!((1.0..=1.6).contains(&large), "1500B added {large}ms");
        let growth = (m.normalized_rtt(1500, 6) - 1.0) * 100.0;
        assert!((2.0..=8.0).contains(&growth), "growth {growth}%");
    }

    #[test]
    fn lossless_throughput_capped_by_port() {
        let m = RecircModel {
            recirc: Bandwidth::from_gbps(1000.0),
            ..Default::default()
        };
        assert_eq!(m.max_lossless_throughput(64, 1).0, m.port.0);
    }
}
