//! The assembled switch: parser + ingress pipeline + traffic manager +
//! egress pipeline + deparser, with ports, counters, and the recirculation
//! loop.
//!
//! A [`Switch`] is built once (field table, parser, pipelines), then
//! [`Switch::provision`]ed, which validates every stage against its
//! hardware limits — the analogue of loading a compiled P4 binary. After
//! provisioning, the data plane configuration is fixed; only table entries
//! and register values change, through [`Switch::apply_op`], one atomic
//! operation at a time. That per-op atomicity is the substrate for the
//! paper's consistent-update protocol (§4.3, Figure 6).

use crate::error::{SimError, SimResult};
use crate::phv::{FieldId, FieldTable, Phv};
use crate::parser::Parser;
use crate::pipeline::{Gress, Pipeline};
use crate::resources::{check_stage, ChipReport};
use crate::salu::RegArray;
use crate::table::{EntryHandle, Table, TableEntry};
use crate::telemetry::{MetricsRecorder, NopRecorder, Recorder, TeeRecorder};
use crate::tm::{decide, Verdict};
use crate::trace::{frame_five_tuple, TraceBuffer, TraceConfig, TraceStats};

/// Static configuration of a switch.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Number of external front-panel ports (0..num_ports).
    pub num_ports: u16,
    /// The CPU punt port id (outside the external range).
    pub cpu_port: u16,
    /// The internal recirculation port id.
    pub recirc_port: u16,
    /// Hardware cap on recirculation passes per packet; exceeding it drops
    /// the packet (loop protection).
    pub max_recirc: u8,
    /// Multi-switch deployment (§4.1.3): when set, a recirculation verdict
    /// emits the state-headered frame on this *wire* port toward the next
    /// switch of the chain instead of looping internally.
    pub recirc_wire_port: Option<u16>,
    /// Ports on which arriving frames carry the state header (the chain's
    /// upstream hop); parsing starts in the recirculation state.
    pub recirc_ingress_ports: Vec<u16>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            num_ports: 64,
            cpu_port: 192,
            recirc_port: 68,
            max_recirc: 8,
            recirc_wire_port: None,
            recirc_ingress_ports: Vec::new(),
        }
    }
}

/// Per-port packet/byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortCounters {
    /// Rx pkts.
    pub rx_pkts: u64,
    /// Rx bytes.
    pub rx_bytes: u64,
    /// Tx pkts.
    pub tx_pkts: u64,
    /// Tx bytes.
    pub tx_bytes: u64,
}

/// What happened to one injected frame.
#[derive(Debug, Clone)]
pub struct ProcessOutcome {
    /// Frames emitted on external ports: `(port, bytes)`.
    pub emitted: Vec<(u16, Vec<u8>)>,
    /// Copies punted to the CPU port (`REPORT`).
    pub reports: Vec<Vec<u8>>,
    /// The packet was dropped (explicitly or by parser reject / recirc cap).
    pub dropped: bool,
    /// Pipeline passes consumed (1 = no recirculation).
    pub passes: u8,
    /// Final PHV, for white-box assertions in tests.
    pub phv: Phv,
}

impl ProcessOutcome {
    /// An empty outcome to pass to [`Switch::process_frame_into`]; reusing
    /// one across calls reuses its buffers.
    pub fn empty() -> ProcessOutcome {
        ProcessOutcome {
            emitted: Vec::new(),
            reports: Vec::new(),
            dropped: false,
            passes: 0,
            phv: Phv::default(),
        }
    }

    fn clear(&mut self) {
        self.emitted.clear();
        self.reports.clear();
        self.dropped = false;
        self.passes = 0;
    }
}

/// Addresses a table inside the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// Gress.
    pub gress: Gress,
    /// Stage.
    pub stage: usize,
    /// Table.
    pub table: usize,
}

/// Per-table lookup-structure statistics: which index serves the table
/// (`exact` / `lpm` / `tss` / `scan`), tuple-space mask-group counts, and
/// megaflow result-cache effectiveness. Surfaced through the telemetry
/// report's `tables` section (`status --json`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableIndexStats {
    /// `"ingress"` or `"egress"`.
    pub gress: String,
    /// Stage index.
    pub stage: u64,
    /// Table index within the stage.
    pub table: u64,
    /// Table name.
    pub name: String,
    /// `"exact"`, `"lpm"`, `"tss"`, or `"scan"`.
    pub mode: String,
    /// False when `set_indexed(false)` forces the authoritative scan.
    pub indexed: bool,
    /// Live entries.
    pub entries: u64,
    /// Tuple-space mask groups (0 unless `mode == "tss"`).
    pub tss_groups: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Megaflow result cache armed.
    pub cache: bool,
    /// Valid memoized probes in the result cache.
    pub cache_entries: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
}

serde::impl_serde_struct!(TableIndexStats {
    gress,
    stage,
    table,
    name,
    mode,
    indexed,
    entries,
    tss_groups,
    hits,
    misses,
    cache,
    cache_entries,
    cache_hits,
    cache_misses,
});

/// Addresses a register array inside the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// Gress.
    pub gress: Gress,
    /// Stage.
    pub stage: usize,
    /// Array.
    pub array: usize,
}

/// One atomic control-plane operation.
#[derive(Debug, Clone)]
pub enum ControlOp {
    /// Insert one table entry (the switch allocates its handle).
    InsertEntry { table: TableRef, entry: TableEntry },
    /// Delete one table entry by handle.
    DeleteEntry { table: TableRef, handle: EntryHandle },
    /// Write one register bucket.
    WriteReg { array: ArrayRef, addr: u32, value: u32 },
    /// Read one register bucket.
    ReadReg { array: ArrayRef, addr: u32 },
    /// Snapshot a contiguous register range.
    ReadRegRange { array: ArrayRef, start: u32, len: u32 },
    /// Zero a contiguous register range (bulk DMA-style reset).
    ResetRegRange { array: ArrayRef, start: u32, len: u32 },
}

/// Result of one control operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// The entry was inserted under this handle.
    Inserted(EntryHandle),
    /// The entry was deleted.
    Deleted,
    /// The bucket was written.
    Written,
    /// The bucket's value.
    Read(u32),
    /// The range's values.
    ReadRange(Vec<u32>),
    /// The range was zeroed.
    Reset,
}

/// The assembled switch.
#[derive(Debug, Clone)]
pub struct Switch {
    /// Cfg.
    pub cfg: SwitchConfig,
    ft: FieldTable,
    parser: Parser,
    ingress: Pipeline,
    egress: Pipeline,
    /// Presence fields zeroed just before final emission — models the
    /// egress deparser invalidating internal-only headers (the P4runpro
    /// recirculation header never escapes to the external network, §4.1.3).
    strip_on_emit: Vec<FieldId>,
    /// Multicast groups (traffic-manager PRE configuration): group id →
    /// egress ports. Group 0 is reserved ("no multicast").
    mcast_groups: std::collections::HashMap<u16, Vec<u16>>,
    provisioned: bool,
    next_handle: u64,
    /// Device generation: bumped by every [`Switch::reset_device`], so the
    /// control plane can tell "my entries vanished" from "the device
    /// rebooted underneath me".
    generation: u64,
    counters: Vec<PortCounters>,
    /// Cpu counters.
    pub cpu_counters: PortCounters,
    /// Drops.
    pub drops: u64,
    /// Recirc passes.
    pub recirc_passes: u64,
    /// Telemetry storage; `None` (the default) keeps the data path on the
    /// no-op recorder.
    telemetry: Option<MetricsRecorder>,
    /// PHV field carrying the owning program id (`p4rp.prog_id`), set by
    /// the control plane when per-program attribution is wanted. `None`
    /// (the default) keeps attribution entirely off the packet path.
    attr_field: Option<FieldId>,
    /// Flight recorder; `None` (the default) records nothing. Boxed so the
    /// disabled switch stays small and clones stay cheap.
    trace: Option<Box<TraceBuffer>>,
    /// Switch-global packet id, stamped on every per-packet trace event.
    /// Always advanced (one add per frame) so ids stay unique across
    /// enable/disable windows of the flight recorder.
    next_packet_id: u64,
    /// Scratch pool reused across packets and recirculation passes: the
    /// working PHV and two ping-pong frame buffers. `process_frame` resets
    /// them per pass instead of allocating fresh ones.
    scratch_phv: Phv,
    scratch_frame: Vec<u8>,
    scratch_next: Vec<u8>,
}

impl Switch {
    /// Assemble a switch from its parts. Call [`Switch::provision`] before
    /// processing packets.
    pub fn assemble(
        cfg: SwitchConfig,
        ft: FieldTable,
        parser: Parser,
        ingress: Pipeline,
        egress: Pipeline,
    ) -> Switch {
        let ports = usize::from(cfg.num_ports);
        let scratch_phv = Phv::new(&ft);
        Switch {
            cfg,
            ft,
            parser,
            ingress,
            egress,
            strip_on_emit: Vec::new(),
            mcast_groups: std::collections::HashMap::new(),
            provisioned: false,
            next_handle: 1,
            generation: 0,
            counters: vec![PortCounters::default(); ports],
            cpu_counters: PortCounters::default(),
            drops: 0,
            recirc_passes: 0,
            telemetry: None,
            attr_field: None,
            trace: None,
            next_packet_id: 0,
            scratch_phv,
            scratch_frame: Vec::new(),
            scratch_next: Vec::new(),
        }
    }

    /// Turn telemetry on (idempotent); subsequent frames record into the
    /// returned [`MetricsRecorder`]. If an attribution field was already
    /// configured, the recorder comes up attributing.
    pub fn enable_telemetry(&mut self) -> &mut MetricsRecorder {
        let attributing = self.attr_field.is_some();
        let m = self.telemetry.get_or_insert_with(MetricsRecorder::new);
        if attributing {
            m.enable_attribution();
        }
        m
    }

    /// Attribute per-stage telemetry to the program id carried in PHV
    /// field `f` (`p4rp.prog_id`). Takes effect immediately when
    /// telemetry is on, and persists across [`Switch::enable_telemetry`]
    /// / [`Switch::fork_worker`]. Attribution costs one PHV read plus a
    /// recorder call per stage per pass — only when both telemetry and
    /// this field are set; otherwise the packet path keeps its
    /// branch-on-None.
    pub fn set_attribution_field(&mut self, f: FieldId) {
        self.attr_field = Some(f);
        if let Some(m) = &mut self.telemetry {
            m.enable_attribution();
        }
    }

    /// The configured attribution field, if any.
    pub fn attribution_field(&self) -> Option<FieldId> {
        self.attr_field
    }

    /// Disarm attribution without touching telemetry: the recorder keeps
    /// its accumulated per-program slots (a future
    /// [`Switch::set_attribution_field`] resumes into them), but new
    /// frames stop reading the PHV field and the stage path reverts to
    /// branch-on-None.
    pub fn clear_attribution_field(&mut self) {
        self.attr_field = None;
    }

    /// Turn telemetry off, returning the accumulated metrics if any.
    pub fn disable_telemetry(&mut self) -> Option<MetricsRecorder> {
        self.telemetry.take()
    }

    /// The accumulated metrics, if telemetry is enabled.
    pub fn telemetry(&self) -> Option<&MetricsRecorder> {
        self.telemetry.as_ref()
    }

    /// Mutable access to the metrics (epoch bumps, resets).
    pub fn telemetry_mut(&mut self) -> Option<&mut MetricsRecorder> {
        self.telemetry.as_mut()
    }

    /// Turn the flight recorder on with the given ring configuration
    /// (idempotent: an already-enabled recorder keeps its ring and its
    /// configuration). Subsequent frames and control operations land in
    /// the returned [`TraceBuffer`].
    pub fn enable_trace(&mut self, cfg: TraceConfig) -> &mut TraceBuffer {
        self.trace.get_or_insert_with(|| Box::new(TraceBuffer::new(cfg)))
    }

    /// Turn the flight recorder off, returning the final ring if it was on.
    pub fn disable_trace(&mut self) -> Option<Box<TraceBuffer>> {
        self.trace.take()
    }

    /// The flight recorder, if enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_deref()
    }

    /// Mutable access to the flight recorder (clock sync, control-side
    /// events, post-mortem dumps).
    pub fn trace_mut(&mut self) -> Option<&mut TraceBuffer> {
        self.trace.as_deref_mut()
    }

    /// Flight-recorder statistics; the disabled sentinel when tracing is
    /// off (`status --json` reports this without a dump).
    pub fn trace_stats(&self) -> TraceStats {
        self.trace.as_ref().map(|t| t.stats()).unwrap_or_else(TraceStats::disabled)
    }

    /// The id the next injected frame will carry in its trace events.
    pub fn next_packet_id(&self) -> u64 {
        self.next_packet_id
    }

    /// Pin the id the next injected frame will carry. The parallel replay
    /// driver stamps each packet with its *global* trace position before
    /// injection, so per-packet trace events carry the same ids a
    /// sequential replay of the same trace would — which is what makes
    /// merged rings worker-count-independent.
    pub fn set_next_packet_id(&mut self, id: u64) {
        self.next_packet_id = id;
    }

    /// Mark headers to strip at final emission (by presence field).
    pub fn set_strip_on_emit(&mut self, presence_fields: Vec<FieldId>) {
        self.strip_on_emit = presence_fields;
    }

    /// Configure a traffic-manager multicast group (PRE programming).
    /// Group 0 is reserved and cannot be configured.
    pub fn set_multicast_group(&mut self, group: u16, ports: Vec<u16>) -> SimResult<()> {
        if group == 0 {
            return Err(SimError::Config("multicast group 0 is reserved".into()));
        }
        for &p in &ports {
            if usize::from(p) >= self.counters.len() {
                return Err(SimError::NoSuchPort(p));
            }
        }
        self.mcast_groups.insert(group, ports);
        Ok(())
    }

    /// Validate the whole configuration against hardware limits and freeze
    /// it. The analogue of pushing a compiled binary to the ASIC.
    pub fn provision(&mut self) -> SimResult<ChipReport> {
        self.parser.validate()?;
        for pipe in [&self.ingress, &self.egress] {
            for stage in &pipe.stages {
                check_stage(stage, &self.ft)?;
            }
        }
        self.provisioned = true;
        Ok(ChipReport::build(&self.ft, &self.ingress, &self.egress))
    }

    /// Is provisioned.
    pub fn is_provisioned(&self) -> bool {
        self.provisioned
    }

    /// Field table.
    pub fn field_table(&self) -> &FieldTable {
        &self.ft
    }

    /// Parser.
    pub fn parser(&self) -> &Parser {
        &self.parser
    }

    /// Chip report.
    pub fn chip_report(&self) -> ChipReport {
        ChipReport::build(&self.ft, &self.ingress, &self.egress)
    }

    /// Port counters.
    pub fn port_counters(&self, port: u16) -> SimResult<PortCounters> {
        self.counters
            .get(usize::from(port))
            .copied()
            .ok_or(SimError::NoSuchPort(port))
    }

    /// Reset counters.
    pub fn reset_counters(&mut self) {
        for c in &mut self.counters {
            *c = PortCounters::default();
        }
        self.cpu_counters = PortCounters::default();
        self.drops = 0;
        self.recirc_passes = 0;
    }

    /// Device generation (bumped by [`Switch::reset_device`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Power-cycle the data plane: every table wiped, every register array
    /// zeroed, multicast groups cleared, generation bumped. The compiled
    /// pipeline configuration (parser, table/array shapes) survives — this
    /// models a device reboot that reloads the P4 binary but loses all
    /// runtime state. Entry handles are *not* reused afterwards.
    pub fn reset_device(&mut self) {
        for pipe in [&mut self.ingress, &mut self.egress] {
            for stage in &mut pipe.stages {
                for table in &mut stage.tables {
                    table.clear();
                }
                for array in &mut stage.arrays {
                    let size = array.size();
                    array.reset_range(0, size).expect("full-array reset is in range");
                }
            }
        }
        self.mcast_groups.clear();
        self.generation += 1;
    }

    /// Every table in the device, in deterministic pipeline order — the
    /// audit surface for control-plane reconciliation.
    pub fn table_refs(&self) -> Vec<TableRef> {
        let mut refs = Vec::new();
        for pipe in [&self.ingress, &self.egress] {
            for (si, stage) in pipe.stages.iter().enumerate() {
                for ti in 0..stage.tables.len() {
                    refs.push(TableRef { gress: stage.gress, stage: si, table: ti });
                }
            }
        }
        refs
    }

    /// Force every table onto the priority-ordered scan (`false`) or its
    /// maintained index (`true`) — the device-wide scan-authority toggle
    /// the benches and the bit-identical replay tests use.
    pub fn set_indexed_all(&mut self, on: bool) {
        for pipe in [&mut self.ingress, &mut self.egress] {
            for stage in &mut pipe.stages {
                for table in &mut stage.tables {
                    table.set_indexed(on);
                }
            }
        }
    }

    /// Arm or drop the megaflow result cache on every table (see
    /// [`Table::set_result_cache`]).
    pub fn set_result_cache_all(&mut self, on: bool) {
        for pipe in [&mut self.ingress, &mut self.egress] {
            for stage in &mut pipe.stages {
                for table in &mut stage.tables {
                    table.set_result_cache(on);
                }
            }
        }
    }

    /// Lookup-structure statistics for every table, in the same
    /// deterministic order as [`Switch::table_refs`].
    pub fn table_index_stats(&self) -> Vec<TableIndexStats> {
        let mut stats = Vec::new();
        for pipe in [&self.ingress, &self.egress] {
            for (si, stage) in pipe.stages.iter().enumerate() {
                for (ti, t) in stage.tables.iter().enumerate() {
                    stats.push(TableIndexStats {
                        gress: stage.gress.to_string(),
                        stage: si as u64,
                        table: ti as u64,
                        name: t.name.clone(),
                        mode: t.index_mode().to_string(),
                        indexed: t.is_indexed(),
                        entries: t.len() as u64,
                        tss_groups: t.tss_groups() as u64,
                        hits: t.hits,
                        misses: t.misses,
                        cache: t.result_cache_enabled(),
                        cache_entries: t.result_cache_len() as u64,
                        cache_hits: t.cache_hits,
                        cache_misses: t.cache_misses,
                    });
                }
            }
        }
        stats
    }

    fn pipeline(&self, gress: Gress) -> &Pipeline {
        match gress {
            Gress::Ingress => &self.ingress,
            Gress::Egress => &self.egress,
        }
    }

    fn pipeline_mut(&mut self, gress: Gress) -> &mut Pipeline {
        match gress {
            Gress::Ingress => &mut self.ingress,
            Gress::Egress => &mut self.egress,
        }
    }

    /// Read-only access to a table (monitoring, tests).
    pub fn table(&self, r: TableRef) -> SimResult<&Table> {
        self.pipeline(r.gress).stage(r.stage)?.table(r.table)
    }

    /// Read-only access to a register array.
    pub fn array(&self, r: ArrayRef) -> SimResult<&RegArray> {
        self.pipeline(r.gress).stage(r.stage)?.array(r.array)
    }

    /// Apply one atomic control operation.
    ///
    /// Atomicity model: operations never interleave with a packet (callers
    /// alternate `process_frame` and `apply_op`), and each operation either
    /// fully applies or fails without effect — RMT's single-entry update
    /// guarantee.
    pub fn apply_op(&mut self, op: &ControlOp) -> SimResult<OpResult> {
        match op {
            ControlOp::InsertEntry { table, entry } => {
                let handle = EntryHandle(self.next_handle);
                let t = self
                    .pipeline_mut(table.gress)
                    .stage_mut(table.stage)?
                    .table_mut(table.table)?;
                t.insert(handle, entry.clone())?;
                self.next_handle += 1;
                Ok(OpResult::Inserted(handle))
            }
            ControlOp::DeleteEntry { table, handle } => {
                let t = self
                    .pipeline_mut(table.gress)
                    .stage_mut(table.stage)?
                    .table_mut(table.table)?;
                t.delete(*handle)?;
                Ok(OpResult::Deleted)
            }
            ControlOp::WriteReg { array, addr, value } => {
                let a = self
                    .pipeline_mut(array.gress)
                    .stage_mut(array.stage)?
                    .array_mut(array.array)?;
                a.write(*addr, *value)?;
                Ok(OpResult::Written)
            }
            ControlOp::ReadReg { array, addr } => {
                let a = self.pipeline(array.gress).stage(array.stage)?.array(array.array)?;
                Ok(OpResult::Read(a.read(*addr)?))
            }
            ControlOp::ReadRegRange { array, start, len } => {
                let a = self.pipeline(array.gress).stage(array.stage)?.array(array.array)?;
                Ok(OpResult::ReadRange(a.read_range(*start, *len)?))
            }
            ControlOp::ResetRegRange { array, start, len } => {
                let a = self
                    .pipeline_mut(array.gress)
                    .stage_mut(array.stage)?
                    .array_mut(array.array)?;
                a.reset_range(*start, *len)?;
                Ok(OpResult::Reset)
            }
        }
    }

    /// Replay one published control-batch delta onto this switch — the
    /// worker side of the snapshot protocol (see [`crate::snapshot`]).
    /// Inserts reuse the master-assigned handle (keeping `next_handle` in
    /// sync so later deletes resolve), and a mid-batch device reset lands
    /// at its recorded position in the op sequence. The delta was built
    /// from operations that already succeeded on an identically shaped
    /// master device, so failures here indicate a diverged clone and are
    /// surfaced rather than skipped.
    pub fn adopt_delta(&mut self, delta: &crate::snapshot::BatchDelta) -> SimResult<()> {
        use crate::snapshot::AppliedOp;
        for op in &delta.ops {
            match op {
                AppliedOp::Insert { table, handle, entry } => {
                    let t = self
                        .pipeline_mut(table.gress)
                        .stage_mut(table.stage)?
                        .table_mut(table.table)?;
                    t.insert(*handle, entry.clone())?;
                    self.next_handle = self.next_handle.max(handle.0 + 1);
                }
                AppliedOp::Delete { table, handle } => {
                    let t = self
                        .pipeline_mut(table.gress)
                        .stage_mut(table.stage)?
                        .table_mut(table.table)?;
                    t.delete(*handle)?;
                }
                AppliedOp::WriteReg { array, addr, value } => {
                    let a = self
                        .pipeline_mut(array.gress)
                        .stage_mut(array.stage)?
                        .array_mut(array.array)?;
                    a.write(*addr, *value)?;
                }
                AppliedOp::ResetRegRange { array, start, len } => {
                    let a = self
                        .pipeline_mut(array.gress)
                        .stage_mut(array.stage)?
                        .array_mut(array.array)?;
                    a.reset_range(*start, *len)?;
                }
                AppliedOp::Reset => self.reset_device(),
            }
        }
        // Epoch-before-batch, worker edition: the batch's table state and
        // its epoch label become visible to this worker's packets
        // together, between two frames.
        if let Some(m) = &mut self.telemetry {
            m.epoch = m.epoch.max(delta.epoch);
        }
        if let Some(t) = &mut self.trace {
            if delta.epoch > t.epoch() {
                t.set_epoch(delta.epoch);
            }
        }
        Ok(())
    }

    /// Clone this switch for a worker thread: identical provisioned
    /// configuration and table/register contents, but fresh counters and —
    /// when enabled on the master — a fresh telemetry recorder and a fresh
    /// trace ring (same configuration, same epoch/clock position), so
    /// per-worker observations start at zero and merge cleanly.
    pub fn fork_worker(&self) -> Switch {
        let mut w = self.clone();
        w.counters = vec![PortCounters::default(); w.counters.len()];
        w.cpu_counters = PortCounters::default();
        w.drops = 0;
        w.recirc_passes = 0;
        if let Some(m) = &mut w.telemetry {
            let epoch = m.epoch;
            let attributing = m.is_attributing();
            *m = MetricsRecorder::new();
            m.epoch = epoch;
            if attributing {
                m.enable_attribution();
            }
        }
        if let Some(t) = &mut w.trace {
            let mut fresh = TraceBuffer::new(t.config().clone());
            fresh.set_now(t.now());
            fresh.set_epoch(t.epoch());
            **t = fresh;
        }
        w
    }

    /// Process one frame injected on an external port, running the full
    /// parser → ingress → TM → egress → deparser path, following
    /// recirculations internally until the packet is emitted or dropped.
    pub fn process_frame(&mut self, port: u16, frame: &[u8]) -> SimResult<ProcessOutcome> {
        let mut outcome = ProcessOutcome::empty();
        self.process_frame_into(port, frame, &mut outcome)?;
        Ok(outcome)
    }

    /// [`Switch::process_frame`] into a caller-owned outcome: `outcome` is
    /// cleared and refilled, so an injection loop that keeps one outcome
    /// alive reuses its buffers instead of allocating per packet. The
    /// working PHV and the recirculation frame buffers come from the
    /// switch's scratch pool, reused across passes and across packets.
    pub fn process_frame_into(
        &mut self,
        port: u16,
        frame: &[u8],
        outcome: &mut ProcessOutcome,
    ) -> SimResult<()> {
        let r = self.process_frame_inner(port, frame, outcome);
        if let Err(e) = &r {
            if let Some(t) = self.trace.as_deref_mut() {
                t.dump_postmortem(&format!("process_frame error: {e}"));
            }
        }
        r
    }

    fn process_frame_inner(
        &mut self,
        port: u16,
        frame: &[u8],
        outcome: &mut ProcessOutcome,
    ) -> SimResult<()> {
        if !self.provisioned {
            return Err(SimError::Config("switch not provisioned".into()));
        }
        if usize::from(port) >= self.counters.len() {
            return Err(SimError::NoSuchPort(port));
        }
        self.counters[usize::from(port)].rx_pkts += 1;
        self.counters[usize::from(port)].rx_bytes += frame.len() as u64;
        outcome.clear();
        let packet = self.next_packet_id;
        self.next_packet_id += 1;
        // Five-tuple extraction is trace-only work; skip the byte peeks
        // entirely when the flight recorder is off.
        let flow = if self.trace.is_some() { frame_five_tuple(frame) } else { None };

        let intr = self.ft.intrinsics();
        let external_port = port;
        // Borrow-check the scratch pool as locals for the duration of the
        // frame; an early `?` return forfeits the buffers' capacity (they
        // re-grow on the next frame), never their correctness.
        let mut current = std::mem::take(&mut self.scratch_frame);
        let mut next = std::mem::take(&mut self.scratch_next);
        let mut phv = std::mem::take(&mut self.scratch_phv);
        current.clear();
        current.extend_from_slice(frame);
        let mut from_recirc = self.cfg.recirc_ingress_ports.contains(&port);
        let mut ingress_port = port;
        let mut passes: u8 = 0;

        // One recorder borrow for the whole frame: the no-op recorder keeps
        // the disabled path at a single virtual call per hook, and the tee
        // fans the same hooks to both metrics and the flight recorder when
        // both are on. The borrow covers only `telemetry`/`trace`, so the
        // direct field accesses below (parser, pipelines, counters, …)
        // split-borrow around it.
        // Per-program attribution: resolve the PHV field to thread through
        // the pipelines once per frame. `None` (attribution off, or
        // telemetry off) keeps every stage on the plain path.
        let attr = match &self.telemetry {
            Some(m) if m.is_attributing() => self.attr_field,
            _ => None,
        };
        let mut nop = NopRecorder;
        let mut tee_storage;
        let rec: &mut dyn Recorder = match (&mut self.telemetry, &mut self.trace) {
            (Some(m), Some(t)) => {
                tee_storage = TeeRecorder { a: m, b: t.as_mut() };
                &mut tee_storage
            }
            (Some(m), None) => m,
            (None, Some(t)) => t.as_mut(),
            (None, None) => &mut nop,
        };
        rec.packet_begin(packet, port, frame.len() as u32);
        if let Some((src, dst, sport, dport, proto)) = flow {
            rec.packet_flow(packet, src, dst, sport, dport, proto);
        }
        loop {
            passes += 1;
            rec.pass_begin(packet, passes);
            phv.reset_for(&self.ft);
            let parse = match self.parser.parse(&self.ft, &current, &mut phv, from_recirc) {
                Ok(p) => p,
                Err(SimError::ParserReject) => {
                    self.drops += 1;
                    outcome.dropped = true;
                    break;
                }
                Err(e) => return Err(e),
            };
            let payload_offset = parse.payload_offset;
            phv.set(&self.ft, intr.ingress_port, u64::from(ingress_port));

            rec.parser_path(parse.bitmap);
            self.ingress.process_attributed(&self.ft, &mut phv, rec, attr)?;
            let decision = decide(&self.ft, &phv);
            // Re-sync the program context before the TM verdict: the
            // filter table's binding action ran *after* the last stage-top
            // context refresh, so this is where a fresh binding first
            // becomes visible to the recorder.
            if let Some(f) = attr {
                rec.prog_ctx(phv.get(f) as u16);
            }
            rec.tm_decision(decision.verdict, decision.report_copy);
            // REPORT copies are punted once, on the packet's final pass
            // (the flag rides the recirculation header between passes).
            if decision.report_copy && decision.verdict != Verdict::Recirculate {
                let mut copy_phv = phv.clone();
                for f in &self.strip_on_emit {
                    copy_phv.set(&self.ft, *f, 0);
                }
                let bytes =
                    self.parser.deparse(&self.ft, &copy_phv, &current[payload_offset..]);
                self.cpu_counters.tx_pkts += 1;
                self.cpu_counters.tx_bytes += bytes.len() as u64;
                outcome.reports.push(bytes);
            }

            match decision.verdict {
                Verdict::Drop => {
                    // The drop applies at the *end of egress*: a dropped
                    // packet still traverses the egress pipeline so that
                    // egress-RPB state updates (e.g. the cache-write
                    // MEMWRITE before a DROP verdict) take effect.
                    self.egress.process_attributed(&self.ft, &mut phv, rec, attr)?;
                    self.drops += 1;
                    outcome.dropped = true;
                    break;
                }
                Verdict::Recirculate => {
                    if passes > self.cfg.max_recirc {
                        self.drops += 1;
                        outcome.dropped = true;
                        break;
                    }
                    self.egress.process_attributed(&self.ft, &mut phv, rec, attr)?;
                    self.recirc_passes += 1;
                    // Multi-switch chain: hand the state-headered frame to
                    // the next switch over the wire (the header is *not*
                    // stripped on this port).
                    if let Some(wire) = self.cfg.recirc_wire_port {
                        let bytes =
                            self.parser.deparse(&self.ft, &phv, &current[payload_offset..]);
                        if let Some(c) = self.counters.get_mut(usize::from(wire)) {
                            c.tx_pkts += 1;
                            c.tx_bytes += bytes.len() as u64;
                        }
                        outcome.emitted.push((wire, bytes));
                        break;
                    }
                    // Rebuild the frame for the next pass into the spare
                    // buffer and swap — no allocation per recirculation.
                    self.parser.deparse_into(
                        &self.ft,
                        &phv,
                        &current[payload_offset..],
                        &mut next,
                    );
                    std::mem::swap(&mut current, &mut next);
                    from_recirc = true;
                    ingress_port = self.cfg.recirc_port;
                }
                Verdict::Return | Verdict::Forward(_) | Verdict::Multicast(_) => {
                    // Each replica traverses egress independently (the PRE
                    // clones before the egress pipeline; with identical
                    // egress state the results coincide, so one egress pass
                    // is processed and the frame replicated).
                    self.egress.process_attributed(&self.ft, &mut phv, rec, attr)?;
                    for f in &self.strip_on_emit {
                        phv.set(&self.ft, *f, 0);
                    }
                    let mut bytes =
                        self.parser.deparse(&self.ft, &phv, &current[payload_offset..]);
                    let single;
                    let out_ports: &[u16] = match decision.verdict {
                        Verdict::Return => {
                            single = [external_port];
                            &single
                        }
                        Verdict::Forward(p) => {
                            single = [p];
                            &single
                        }
                        Verdict::Multicast(g) => {
                            self.mcast_groups.get(&g).map(Vec::as_slice).unwrap_or(&[])
                        }
                        _ => unreachable!(),
                    };
                    if out_ports.is_empty() {
                        self.drops += 1;
                        outcome.dropped = true;
                    }
                    for (k, &out_port) in out_ports.iter().enumerate() {
                        if let Some(c) = self.counters.get_mut(usize::from(out_port)) {
                            c.tx_pkts += 1;
                            c.tx_bytes += bytes.len() as u64;
                        }
                        // The last replica takes the deparsed frame itself;
                        // earlier ones clone.
                        let frame = if k + 1 == out_ports.len() {
                            std::mem::take(&mut bytes)
                        } else {
                            bytes.clone()
                        };
                        outcome.emitted.push((out_port, frame));
                    }
                    break;
                }
            }
        }
        rec.packet_end(packet, passes, outcome.dropped);
        outcome.passes = passes;
        outcome.phv.clone_from(&phv);
        self.scratch_frame = current;
        self.scratch_next = next;
        self.scratch_phv = phv;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, Operand, VliwOp};
    use crate::parser::{HeaderDef, HeaderField, NextState, ParseState};
    use crate::pipeline::StageLimits;
    use crate::table::{KeySpec, MatchKind, MatchValue};

    /// Build a minimal switch: one 2-byte header `(tag, port)`, a single
    /// ingress table forwarding on `tag`, empty egress.
    fn tiny_switch() -> (Switch, FieldId, FieldId) {
        let mut ft = FieldTable::new();
        let f_tag = ft.register("hdr.t.tag", 8).unwrap();
        let f_dst = ft.register("hdr.t.dst", 8).unwrap();
        let v_t = ft.register("hdr.t.$valid", 1).unwrap();
        let intr = ft.intrinsics();

        let mut parser = Parser::new();
        let h = parser.add_header(HeaderDef {
            name: "t".into(),
            len_bytes: 2,
            fields: vec![
                HeaderField { field: f_tag, bit_offset: 0, bits: 8 },
                HeaderField { field: f_dst, bit_offset: 8, bits: 8 },
            ],
            presence: v_t,
            checksum_at: None,
            bitmap_bit: 0,
        });
        let s = parser.add_state(ParseState {
            header: h,
            select: None,
            transitions: vec![],
            default: NextState::Accept,
        });
        parser.set_start(s);

        let mut ingress = Pipeline::new(Gress::Ingress, 2, StageLimits::default());
        let egress = Pipeline::new(Gress::Egress, 2, StageLimits::default());

        let mut fwd = Table::new(
            "fwd",
            KeySpec::new(vec![(f_tag, MatchKind::Exact)]),
            vec![
                ActionDef {
                    name: "to_dst".into(),
                    ops: vec![
                        VliwOp::set(intr.egress_spec, Operand::Field(f_dst)),
                        VliwOp::set(intr.egress_valid, Operand::Const(1)),
                    ],
                    hash: None,
                    salu: None,
                },
                ActionDef {
                    name: "drop".into(),
                    ops: vec![VliwOp::set(intr.drop_flag, Operand::Const(1))],
                    hash: None,
                    salu: None,
                },
            ],
            16,
        );
        fwd.set_default_action(1, vec![]);
        ingress.stage_mut(0).unwrap().add_table(fwd);

        let sw = Switch::assemble(SwitchConfig::default(), ft, parser, ingress, egress);
        (sw, f_tag, f_dst)
    }

    #[test]
    fn must_provision_before_processing() {
        let (mut sw, _, _) = tiny_switch();
        assert!(sw.process_frame(0, &[1, 2]).is_err());
        sw.provision().unwrap();
        assert!(sw.process_frame(0, &[1, 2]).is_ok());
    }

    #[test]
    fn forward_and_default_drop() {
        let (mut sw, _, _) = tiny_switch();
        sw.provision().unwrap();
        // Install: tag 7 → forward to hdr dst field.
        sw.apply_op(&ControlOp::InsertEntry {
            table: TableRef { gress: Gress::Ingress, stage: 0, table: 0 },
            entry: TableEntry {
                matches: vec![MatchValue::Exact(7)],
                priority: 0,
                action: 0,
                data: vec![],
            },
        })
        .unwrap();
        let out = sw.process_frame(3, &[7, 9, 0xAA]).unwrap();
        assert_eq!(out.emitted, vec![(9u16, vec![7, 9, 0xAA])]);
        assert!(!out.dropped);
        // Unknown tag → default action drops.
        let out = sw.process_frame(3, &[8, 9]).unwrap();
        assert!(out.dropped);
        assert!(out.emitted.is_empty());
        assert_eq!(sw.drops, 1);
    }

    #[test]
    fn counters_track_rx_tx() {
        let (mut sw, _, _) = tiny_switch();
        sw.provision().unwrap();
        sw.apply_op(&ControlOp::InsertEntry {
            table: TableRef { gress: Gress::Ingress, stage: 0, table: 0 },
            entry: TableEntry {
                matches: vec![MatchValue::Exact(1)],
                priority: 0,
                action: 0,
                data: vec![],
            },
        })
        .unwrap();
        sw.process_frame(2, &[1, 5, 0, 0]).unwrap();
        assert_eq!(sw.port_counters(2).unwrap().rx_pkts, 1);
        assert_eq!(sw.port_counters(2).unwrap().rx_bytes, 4);
        assert_eq!(sw.port_counters(5).unwrap().tx_pkts, 1);
        sw.reset_counters();
        assert_eq!(sw.port_counters(2).unwrap().rx_pkts, 0);
    }

    #[test]
    fn parser_reject_counts_as_drop() {
        let (mut sw, _, _) = tiny_switch();
        sw.provision().unwrap();
        let out = sw.process_frame(0, &[1]).unwrap(); // 1 byte < header
        assert!(out.dropped);
        assert_eq!(sw.drops, 1);
    }

    #[test]
    fn entry_insert_delete_roundtrip() {
        let (mut sw, _, _) = tiny_switch();
        sw.provision().unwrap();
        let tref = TableRef { gress: Gress::Ingress, stage: 0, table: 0 };
        let r = sw
            .apply_op(&ControlOp::InsertEntry {
                table: tref,
                entry: TableEntry {
                    matches: vec![MatchValue::Exact(1)],
                    priority: 0,
                    action: 0,
                    data: vec![],
                },
            })
            .unwrap();
        let handle = match r {
            OpResult::Inserted(h) => h,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(sw.table(tref).unwrap().len(), 1);
        sw.apply_op(&ControlOp::DeleteEntry { table: tref, handle }).unwrap();
        assert_eq!(sw.table(tref).unwrap().len(), 0);
        // Deleting again fails cleanly.
        assert!(sw.apply_op(&ControlOp::DeleteEntry { table: tref, handle }).is_err());
    }

    #[test]
    fn handles_are_unique() {
        let (mut sw, _, _) = tiny_switch();
        sw.provision().unwrap();
        let tref = TableRef { gress: Gress::Ingress, stage: 0, table: 0 };
        let mut handles = std::collections::HashSet::new();
        for i in 0..5u64 {
            let r = sw
                .apply_op(&ControlOp::InsertEntry {
                    table: tref,
                    entry: TableEntry {
                        matches: vec![MatchValue::Exact(i)],
                        priority: 0,
                        action: 0,
                        data: vec![],
                    },
                })
                .unwrap();
            if let OpResult::Inserted(h) = r {
                assert!(handles.insert(h));
            }
        }
    }

    #[test]
    fn reg_ops_roundtrip() {
        let (mut sw, _, _) = tiny_switch();
        // Add an array pre-provision.
        sw.pipeline_mut(Gress::Ingress)
            .stage_mut(1)
            .unwrap()
            .add_array(RegArray::new("m", 16));
        sw.provision().unwrap();
        let aref = ArrayRef { gress: Gress::Ingress, stage: 1, array: 0 };
        sw.apply_op(&ControlOp::WriteReg { array: aref, addr: 3, value: 42 }).unwrap();
        assert_eq!(
            sw.apply_op(&ControlOp::ReadReg { array: aref, addr: 3 }).unwrap(),
            OpResult::Read(42)
        );
        assert_eq!(
            sw.apply_op(&ControlOp::ReadRegRange { array: aref, start: 2, len: 3 }).unwrap(),
            OpResult::ReadRange(vec![0, 42, 0])
        );
        sw.apply_op(&ControlOp::ResetRegRange { array: aref, start: 0, len: 16 }).unwrap();
        assert_eq!(
            sw.apply_op(&ControlOp::ReadReg { array: aref, addr: 3 }).unwrap(),
            OpResult::Read(0)
        );
    }

    #[test]
    fn recirculation_cap_drops_loopers() {
        // A pipeline that unconditionally recirculates must be cut off at
        // the configured maximum (loop protection), not spin forever.
        let (mut sw, _, _) = tiny_switch();
        let intr = sw.field_table().intrinsics();
        let mut loop_tbl = Table::new(
            "loop",
            KeySpec::new(vec![(intr.ingress_port, MatchKind::Ternary)]),
            vec![ActionDef {
                name: "again".into(),
                ops: vec![VliwOp::set(intr.recirc_flag, Operand::Const(1))],
                hash: None,
                salu: None,
            }],
            4,
        );
        loop_tbl.set_default_action(0, vec![]);
        sw.pipeline_mut(Gress::Ingress).stage_mut(1).unwrap().add_table(loop_tbl);
        sw.provision().unwrap();
        let out = sw.process_frame(0, &[1, 2]).unwrap();
        assert!(out.dropped);
        assert_eq!(out.passes, sw.cfg.max_recirc + 1);
        assert!(sw.recirc_passes >= u64::from(sw.cfg.max_recirc));
    }

    #[test]
    fn multicast_groups_validated_and_replicate() {
        let (mut sw, _, _) = tiny_switch();
        let intr = sw.field_table().intrinsics();
        let mut mc = Table::new(
            "mc",
            KeySpec::new(vec![(intr.ingress_port, MatchKind::Ternary)]),
            vec![ActionDef {
                name: "to_group".into(),
                ops: vec![VliwOp::set(intr.mcast_group, Operand::Const(7))],
                hash: None,
                salu: None,
            }],
            4,
        );
        mc.set_default_action(0, vec![]);
        sw.pipeline_mut(Gress::Ingress).stage_mut(1).unwrap().add_table(mc);
        sw.provision().unwrap();
        assert!(sw.set_multicast_group(0, vec![1]).is_err(), "group 0 reserved");
        assert!(sw.set_multicast_group(7, vec![1, 999]).is_err(), "bad port");
        sw.set_multicast_group(7, vec![2, 4, 6]).unwrap();
        // Give the packet a unicast forward too: multicast outranks it.
        sw.apply_op(&ControlOp::InsertEntry {
            table: TableRef { gress: Gress::Ingress, stage: 0, table: 0 },
            entry: TableEntry {
                matches: vec![MatchValue::Exact(9)],
                priority: 0,
                action: 0,
                data: vec![],
            },
        })
        .unwrap();
        let out = sw.process_frame(0, &[9, 9]).unwrap();
        let ports: Vec<u16> = out.emitted.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![2, 4, 6]);
        assert_eq!(sw.port_counters(4).unwrap().tx_pkts, 1);
    }

    #[test]
    fn bad_port_rejected() {
        let (mut sw, _, _) = tiny_switch();
        sw.provision().unwrap();
        assert!(matches!(sw.process_frame(500, &[1, 2]), Err(SimError::NoSuchPort(500))));
    }
}
