//! Deterministic fault injection for the control channel.
//!
//! The paper's consistency argument (§4.3) assumes the `bfrt_grpc` channel
//! can fail between any two table writes: batches are fail-stop, not
//! atomic. A [`FaultPlan`] makes that failure surface *testable* — a
//! seeded, fully deterministic schedule of faults keyed on the global
//! control-operation index, so a chaos scenario can fail exactly op 2 of
//! exactly one install batch and replay the identical run from the same
//! seed. The plan lives inside [`ControlChannel`](crate::control::ControlChannel)
//! and is consulted on the hot path only through two branch-on-empty
//! checks, so a disarmed plan costs nothing measurable (the bench guard in
//! `bench_controlplane` holds it to within noise).

use crate::switch::ControlOp;
use rand::prelude::*;

/// What a trigger does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail one operation mid-batch: the op is *not* applied, the batch
    /// stops, everything before it stays on the device (fail-stop).
    FailOp,
    /// Time out the whole batch before anything is applied. Retryable:
    /// the device never saw the batch.
    BatchTimeout,
    /// Drop the channel before anything is applied. The channel stays
    /// down (every batch fails) until `reconnect()`.
    ChannelDrop,
    /// Reset the simulated device mid-batch: all tables wiped, all
    /// registers zeroed, device generation bumped. The applied prefix of
    /// the current batch is wiped along with everything else.
    DeviceReset,
}

impl FaultKind {
    /// Stable lower-case name, used by the spec syntax and trace render.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::FailOp => "failop",
            FaultKind::BatchTimeout => "timeout",
            FaultKind::ChannelDrop => "drop",
            FaultKind::DeviceReset => "reset",
        }
    }
}

/// Coarse operation class a trigger can be restricted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Table entry insert.
    Insert,
    /// Table entry delete.
    Delete,
    /// Register write or range reset.
    RegWrite,
    /// Register read (single or range).
    RegRead,
}

impl OpKind {
    /// Classify a control op.
    pub fn of(op: &ControlOp) -> OpKind {
        match op {
            ControlOp::InsertEntry { .. } => OpKind::Insert,
            ControlOp::DeleteEntry { .. } => OpKind::Delete,
            ControlOp::WriteReg { .. } | ControlOp::ResetRegRange { .. } => OpKind::RegWrite,
            ControlOp::ReadReg { .. } | ControlOp::ReadRegRange { .. } => OpKind::RegRead,
        }
    }

    /// Stable lower-case name, used by the spec syntax.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Insert => "insert",
            OpKind::Delete => "delete",
            OpKind::RegWrite => "regwrite",
            OpKind::RegRead => "regread",
        }
    }
}

/// One armed fault: fire `fault` at (or after) global op index `at`,
/// optionally only when the op matches `op_kind`. One-shot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTrigger {
    /// Global control-op index (counted across batches, attempted ops) at
    /// which the trigger becomes due.
    pub at: u64,
    /// Restrict firing to ops of this class; `None` fires on any op.
    /// Batch-level faults ([`FaultKind::BatchTimeout`],
    /// [`FaultKind::ChannelDrop`]) ignore the restriction — they fire at
    /// the start of the batch whose op-index range covers `at`.
    pub op_kind: Option<OpKind>,
    /// What happens.
    pub fault: FaultKind,
}

/// A deterministic schedule of control-channel faults.
///
/// The plan counts every *attempted* op (applied or faulted) across all
/// batches; trigger indices refer to that global counter, so the same
/// plan against the same op stream always fires at the same place.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    triggers: Vec<FaultTrigger>,
    fired: Vec<bool>,
    ops_attempted: u64,
    faults_fired: u64,
}

impl FaultPlan {
    /// An armed plan from explicit triggers.
    pub fn new(triggers: Vec<FaultTrigger>) -> FaultPlan {
        let fired = vec![false; triggers.len()];
        FaultPlan { triggers, fired, ops_attempted: 0, faults_fired: 0 }
    }

    /// The disarmed plan: present, checked, never fires.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// `count` random triggers with op indices in `0..horizon`, a pure
    /// function of `seed`. All four fault kinds are reachable.
    pub fn random(seed: u64, count: usize, horizon: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let kinds = [
            FaultKind::FailOp,
            FaultKind::BatchTimeout,
            FaultKind::ChannelDrop,
            FaultKind::DeviceReset,
        ];
        let mut triggers = Vec::with_capacity(count);
        for _ in 0..count {
            let fault = kinds[rng.random_range(0usize..kinds.len())];
            let at = if horizon == 0 { 0 } else { rng.random_range(0u64..horizon) };
            triggers.push(FaultTrigger { at, op_kind: None, fault });
        }
        FaultPlan::new(triggers)
    }

    /// Parse the CLI spec syntax: a comma-separated list of
    /// `<kind>[:<opkind>]@<index>` items, e.g.
    /// `failop@5,reset@12,timeout@0,drop:insert@20`.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut triggers = Vec::new();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (head, at) = item
                .split_once('@')
                .ok_or_else(|| format!("fault `{item}`: expected <kind>[:<opkind>]@<index>"))?;
            let at: u64 = at
                .trim()
                .parse()
                .map_err(|_| format!("fault `{item}`: bad op index `{at}`"))?;
            let (kind, op_kind) = match head.split_once(':') {
                Some((k, o)) => (k.trim(), Some(o.trim())),
                None => (head.trim(), None),
            };
            let fault = match kind {
                "failop" => FaultKind::FailOp,
                "timeout" => FaultKind::BatchTimeout,
                "drop" => FaultKind::ChannelDrop,
                "reset" => FaultKind::DeviceReset,
                other => {
                    return Err(format!(
                        "fault `{item}`: unknown kind `{other}` \
                         (expected failop|timeout|drop|reset)"
                    ))
                }
            };
            let op_kind = match op_kind {
                None => None,
                Some("insert") => Some(OpKind::Insert),
                Some("delete") => Some(OpKind::Delete),
                Some("regwrite") => Some(OpKind::RegWrite),
                Some("regread") => Some(OpKind::RegRead),
                Some(other) => {
                    return Err(format!(
                        "fault `{item}`: unknown op kind `{other}` \
                         (expected insert|delete|regwrite|regread)"
                    ))
                }
            };
            triggers.push(FaultTrigger { at, op_kind, fault });
        }
        Ok(FaultPlan::new(triggers))
    }

    /// Render back to the spec syntax (fired triggers included).
    pub fn spec(&self) -> String {
        let items: Vec<String> = self
            .triggers
            .iter()
            .map(|t| match t.op_kind {
                Some(o) => format!("{}:{}@{}", t.fault.name(), o.name(), t.at),
                None => format!("{}@{}", t.fault.name(), t.at),
            })
            .collect();
        items.join(",")
    }

    /// True when no trigger can ever fire again.
    pub fn is_exhausted(&self) -> bool {
        self.fired.iter().all(|f| *f)
    }

    /// Armed triggers.
    pub fn triggers(&self) -> &[FaultTrigger] {
        &self.triggers
    }

    /// Global attempted-op counter.
    pub fn ops_attempted(&self) -> u64 {
        self.ops_attempted
    }

    /// Total triggers that have fired.
    pub fn faults_fired(&self) -> u64 {
        self.faults_fired
    }

    /// Consult the plan at the start of a batch of `len` ops. Fires the
    /// first due batch-level trigger (timeout/drop) whose `at` falls
    /// inside this batch's op-index range `[ops_attempted,
    /// ops_attempted + len)`.
    pub fn batch_fault(&mut self, len: usize) -> Option<FaultKind> {
        if self.triggers.is_empty() {
            return None;
        }
        let lo = self.ops_attempted;
        let hi = lo + len as u64;
        for (i, t) in self.triggers.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            if !matches!(t.fault, FaultKind::BatchTimeout | FaultKind::ChannelDrop) {
                continue;
            }
            // An empty batch still pays the per-batch RPC, so a trigger
            // sitting exactly at the counter fires on it too.
            if t.at >= lo && (t.at < hi || len == 0 && t.at == lo) {
                self.fired[i] = true;
                self.faults_fired += 1;
                return Some(t.fault);
            }
        }
        None
    }

    /// Consult the plan before applying one op; always advances the
    /// global counter. Fires the first due op-level trigger
    /// (failop/reset) matching the op's class.
    pub fn op_fault(&mut self, op: &ControlOp) -> Option<FaultKind> {
        let idx = self.ops_attempted;
        self.ops_attempted += 1;
        if self.triggers.is_empty() {
            return None;
        }
        let class = OpKind::of(op);
        for (i, t) in self.triggers.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            if !matches!(t.fault, FaultKind::FailOp | FaultKind::DeviceReset) {
                continue;
            }
            if t.at > idx {
                continue;
            }
            if let Some(k) = t.op_kind {
                if k != class {
                    continue;
                }
            }
            self.fired[i] = true;
            self.faults_fired += 1;
            return Some(t.fault);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Gress;
    use crate::switch::TableRef;
    use crate::table::{EntryHandle, MatchValue, TableEntry};

    fn insert() -> ControlOp {
        ControlOp::InsertEntry {
            table: TableRef { gress: Gress::Ingress, stage: 0, table: 0 },
            entry: TableEntry {
                matches: vec![MatchValue::Exact(1)],
                priority: 0,
                action: 0,
                data: vec![],
            },
        }
    }

    fn delete() -> ControlOp {
        ControlOp::DeleteEntry {
            table: TableRef { gress: Gress::Ingress, stage: 0, table: 0 },
            handle: EntryHandle(1),
        }
    }

    #[test]
    fn op_trigger_fires_once_at_index() {
        let mut plan = FaultPlan::new(vec![FaultTrigger {
            at: 2,
            op_kind: None,
            fault: FaultKind::FailOp,
        }]);
        assert_eq!(plan.op_fault(&insert()), None);
        assert_eq!(plan.op_fault(&insert()), None);
        assert_eq!(plan.op_fault(&insert()), Some(FaultKind::FailOp));
        assert_eq!(plan.op_fault(&insert()), None, "one-shot");
        assert_eq!(plan.ops_attempted(), 4);
        assert!(plan.is_exhausted());
    }

    #[test]
    fn kind_matched_trigger_waits_for_matching_op() {
        let mut plan = FaultPlan::new(vec![FaultTrigger {
            at: 0,
            op_kind: Some(OpKind::Delete),
            fault: FaultKind::FailOp,
        }]);
        assert_eq!(plan.op_fault(&insert()), None, "insert does not match");
        assert_eq!(plan.op_fault(&delete()), Some(FaultKind::FailOp));
    }

    #[test]
    fn batch_trigger_fires_on_covering_batch() {
        let mut plan = FaultPlan::new(vec![FaultTrigger {
            at: 5,
            op_kind: None,
            fault: FaultKind::BatchTimeout,
        }]);
        assert_eq!(plan.batch_fault(3), None, "ops 0..3 do not cover 5");
        for _ in 0..3 {
            plan.op_fault(&insert());
        }
        assert_eq!(plan.batch_fault(4), Some(FaultKind::BatchTimeout), "ops 3..7 cover 5");
        assert_eq!(plan.batch_fault(4), None, "one-shot");
    }

    #[test]
    fn spec_round_trips() {
        let plan =
            FaultPlan::parse_spec("failop@5, reset@12,timeout@0,drop:insert@20").unwrap();
        assert_eq!(plan.triggers().len(), 4);
        assert_eq!(plan.spec(), "failop@5,reset@12,timeout@0,drop:insert@20");
        let back = FaultPlan::parse_spec(&plan.spec()).unwrap();
        assert_eq!(back.triggers(), plan.triggers());
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultPlan::parse_spec("explode@3").is_err());
        assert!(FaultPlan::parse_spec("failop@").is_err());
        assert!(FaultPlan::parse_spec("failop").is_err());
        assert!(FaultPlan::parse_spec("failop:frobnicate@1").is_err());
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(7, 6, 40);
        let b = FaultPlan::random(7, 6, 40);
        assert_eq!(a.triggers(), b.triggers());
        let c = FaultPlan::random(8, 6, 40);
        assert_ne!(a.triggers(), c.triggers());
    }
}
