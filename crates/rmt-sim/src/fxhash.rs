//! A minimal Fx-style hasher for the data-plane hot path.
//!
//! The table indexes ([`crate::table`]) sit on the per-packet critical
//! path; `std`'s default SipHash is DoS-resistant but costs tens of
//! nanoseconds per probe, which would eat most of the indexed-lookup win
//! over the linear scan. Keys here are small fixed tuples chosen by the
//! control plane (not attacker-controlled network bytes), so the classic
//! rustc `FxHasher` recipe — rotate, xor, multiply by a large odd constant
//! per word — is the right trade. Vendoring rules out pulling `rustc-hash`
//! itself; the algorithm is a few lines.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from rustc's FxHasher (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiplicative hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance claim — just a sanity check that the
        // hasher actually mixes its input.
        let h = |words: &[u64]| {
            let mut hasher = FxHasher::default();
            for &w in words {
                hasher.write_u64(w);
            }
            hasher.finish()
        };
        assert_ne!(h(&[1]), h(&[2]));
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
        assert_ne!(h(&[1]), h(&[1, 1]));
    }

    #[test]
    fn map_roundtrip_with_slice_probe() {
        let mut m: FxHashMap<Box<[u64]>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3].into_boxed_slice(), 7);
        let probe = [1u64, 2, 3];
        assert_eq!(m.get(&probe[..]), Some(&7));
        assert_eq!(m.get(&probe[..2]), None);
    }

    #[test]
    fn byte_stream_tail_handled() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
