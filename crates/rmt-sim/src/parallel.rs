//! The sharded multi-worker data plane.
//!
//! One [`Switch`] stays the **master**: the control plane (channel,
//! controller, CLI) keeps talking to it exactly as before. For packet
//! processing, a [`WorkerPool`] forks N worker switches from the master;
//! each worker owns its scratch PHV, frame buffers, port counters,
//! telemetry recorder, and trace ring, so workers never share mutable
//! state and never take a lock on the packet path.
//!
//! Three mechanisms make the parallel engine observationally equivalent
//! to a sequential replay:
//!
//! 1. **Flow-affine sharding.** [`shard_for_frame`] hashes the RSS-style
//!    five-tuple (falling back to a frame-prefix hash for non-IP/TCP/UDP
//!    frames), so every packet of a flow lands on the same worker and
//!    per-flow ordering is preserved.
//! 2. **Epoch-consistent snapshots.** Workers adopt control-plane updates
//!    from the [`SnapshotPublisher`] delta stream *between* packets
//!    ([`Worker::poll`]); each delta is one whole applied batch
//!    ([`crate::snapshot`]), so no worker ever observes a torn batch, and
//!    deploys never block packet processing — publication is an atomic
//!    pointer swap on the master side, adoption is off the master's
//!    critical path entirely.
//! 3. **Deterministic merge.** Per-worker telemetry merges through
//!    [`MetricsRecorder::merge`] (commutative, additive) and per-worker
//!    trace rings through [`merge_rings`] (global timestamp/packet-id
//!    order, seqs renumbered, drops accounted exactly), so `status
//!    --json`, packet journeys, and the Perfetto export are
//!    worker-count-independent.
//!
//! The pool is deliberately driver-agnostic: it does not spawn threads
//! itself. `traffic::replay::ParallelReplay` shards a timed trace and
//! drives one worker per thread; tests drive workers directly.

use crate::snapshot::{SnapshotPublisher, SnapshotReader};
use crate::switch::{PortCounters, ProcessOutcome, Switch};
use crate::telemetry::MetricsRecorder;
use crate::trace::{merge_rings, TraceBuffer};
use std::hash::Hasher;

/// Shard a frame onto one of `n` workers by RSS-style five-tuple hash.
/// All packets of a TCP/UDP flow map to the same worker; non-IP frames
/// hash their first bytes, which still keeps identical frames (the replay
/// generators' notion of a flow) together.
pub fn shard_for_frame(frame: &[u8], n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let mut h = crate::fxhash::FxHasher::default();
    match crate::trace::frame_five_tuple(frame) {
        Some((src, dst, sport, dport, proto)) => {
            h.write_u32(src);
            h.write_u32(dst);
            h.write_u16(sport);
            h.write_u16(dport);
            h.write_u8(proto);
        }
        None => h.write(&frame[..frame.len().min(32)]),
    }
    (h.finish() % n as u64) as usize
}

/// Per-worker activity summary, cheap to sample at any point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: u64,
    /// Packets this worker injected.
    pub packets: u64,
    /// Packets the worker's switch dropped.
    pub drops: u64,
    /// Recirculation passes on this worker.
    pub recirc_passes: u64,
    /// Snapshot generation the worker has adopted up to.
    pub snapshot_generation: u64,
    /// Trace events recorded on this worker's ring.
    pub trace_recorded: u64,
    /// Trace events dropped from this worker's ring.
    pub trace_dropped: u64,
}

serde::impl_serde_struct!(WorkerStats {
    worker,
    packets,
    drops,
    recirc_passes,
    snapshot_generation,
    trace_recorded,
    trace_dropped,
});

/// One worker: a forked switch plus its cursor into the snapshot stream.
#[derive(Debug)]
pub struct Worker {
    switch: Switch,
    reader: SnapshotReader,
    id: usize,
    packets: u64,
}

impl Worker {
    /// Adopt every control-plane delta published since the last poll.
    /// Costs one atomic load when nothing changed — the per-packet steady
    /// state. Returns how many deltas were adopted.
    pub fn poll(&mut self) -> crate::error::SimResult<usize> {
        let pending = self.reader.poll();
        for delta in &pending {
            self.switch.adopt_delta(delta)?;
        }
        Ok(pending.len())
    }

    /// Inject one frame under an externally assigned (global) packet id.
    /// Polls for snapshot deltas first, so control-plane updates take
    /// effect on batch boundaries — never mid-packet.
    pub fn inject_at(
        &mut self,
        packet_id: u64,
        port: u16,
        frame: &[u8],
        outcome: &mut ProcessOutcome,
    ) -> crate::error::SimResult<()> {
        self.poll()?;
        self.switch.set_next_packet_id(packet_id);
        self.packets += 1;
        self.switch.process_frame_into(port, frame, outcome)
    }

    /// Worker index within its pool.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Packets injected so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// The worker's switch.
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// The worker's switch, mutably (tests use this to pre-position
    /// clocks; the replay driver should go through
    /// [`inject_at`](Self::inject_at)).
    pub fn switch_mut(&mut self) -> &mut Switch {
        &mut self.switch
    }

    /// Snapshot of this worker's counters.
    pub fn stats(&self) -> WorkerStats {
        let trace = self.switch.trace_stats();
        WorkerStats {
            worker: self.id as u64,
            packets: self.packets,
            drops: self.switch.drops,
            recirc_passes: self.switch.recirc_passes,
            snapshot_generation: self.reader.generation(),
            trace_recorded: trace.recorded,
            trace_dropped: trace.dropped,
        }
    }
}

/// A fixed-size pool of workers forked from one master switch.
#[derive(Debug)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Fork `n` workers from `master`, each subscribed to `publisher` at
    /// the current generation. Fork and subscribe see the same master
    /// state, so a worker neither misses nor double-applies a batch:
    /// everything up to the subscription generation is in the fork,
    /// everything after arrives as a delta.
    pub fn new(master: &Switch, publisher: &SnapshotPublisher, n: usize) -> WorkerPool {
        let workers = (0..n.max(1))
            .map(|id| Worker {
                switch: master.fork_worker(),
                reader: publisher.subscribe(),
                id,
                packets: 0,
            })
            .collect();
        WorkerPool { workers }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Never true — `new` clamps to at least one worker.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Which worker owns this frame's flow.
    pub fn shard_for(&self, frame: &[u8]) -> usize {
        shard_for_frame(frame, self.workers.len())
    }

    /// The workers.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// The workers, mutably — `split_at_mut`-friendly for the threaded
    /// driver.
    pub fn workers_mut(&mut self) -> &mut [Worker] {
        &mut self.workers
    }

    /// One worker, mutably.
    pub fn worker_mut(&mut self, i: usize) -> &mut Worker {
        &mut self.workers[i]
    }

    /// Bring every worker up to the latest published generation (used on
    /// quiesce, before merging).
    pub fn poll_all(&mut self) -> crate::error::SimResult<()> {
        for w in &mut self.workers {
            w.poll()?;
        }
        Ok(())
    }

    /// Per-worker stats, in worker order.
    pub fn stats(&self) -> Vec<WorkerStats> {
        self.workers.iter().map(Worker::stats).collect()
    }

    /// All workers' telemetry merged into one recorder (order-independent;
    /// see [`MetricsRecorder::merge`]). `None` if telemetry is off.
    pub fn merged_metrics(&self) -> Option<MetricsRecorder> {
        let mut iter = self.workers.iter().filter_map(|w| w.switch.telemetry());
        let mut merged = iter.next()?.clone();
        for m in iter {
            merged.merge(m);
        }
        Some(merged)
    }

    /// All workers' trace rings (plus the master's, for control events)
    /// merged into one deterministically ordered ring. `None` if tracing
    /// is off.
    pub fn merged_trace(&self, master: &Switch) -> Option<TraceBuffer> {
        let master_ring = master.trace()?;
        let rings =
            std::iter::once(master_ring).chain(self.workers.iter().filter_map(|w| w.switch.trace()));
        Some(merge_rings(rings, master_ring.config().clone()))
    }

    /// Per-port counters summed across workers, indexed by port.
    pub fn merged_port_counters(&self) -> Vec<PortCounters> {
        let ports = self
            .workers
            .iter()
            .map(|w| w.switch.cfg.num_ports)
            .max()
            .unwrap_or(0);
        let mut out = vec![PortCounters::default(); usize::from(ports)];
        for w in &self.workers {
            for (port, acc) in out.iter_mut().enumerate() {
                if let Ok(c) = w.switch.port_counters(port as u16) {
                    acc.rx_pkts += c.rx_pkts;
                    acc.rx_bytes += c.rx_bytes;
                    acc.tx_pkts += c.tx_pkts;
                    acc.tx_bytes += c.tx_bytes;
                }
            }
        }
        out
    }

    /// Total packets injected across workers.
    pub fn total_packets(&self) -> u64 {
        self.workers.iter().map(|w| w.packets).sum()
    }

    /// Total drops across workers.
    pub fn total_drops(&self) -> u64 {
        self.workers.iter().map(|w| w.switch.drops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_frame(src: u32, sport: u16) -> Vec<u8> {
        let mut f = vec![0u8; 54];
        f[12] = 0x08; // ethertype IPv4
        f[13] = 0x00;
        f[14] = 0x45; // IHL 5
        f[23] = 6; // TCP
        f[26..30].copy_from_slice(&src.to_be_bytes());
        f[30..34].copy_from_slice(&0x0a00_0001u32.to_be_bytes());
        f[34..36].copy_from_slice(&sport.to_be_bytes());
        f[36..38].copy_from_slice(&80u16.to_be_bytes());
        f
    }

    #[test]
    fn sharding_is_flow_affine_and_covers_workers() {
        let a = tcp_frame(0x0a00_0002, 1111);
        let b = tcp_frame(0x0a00_0003, 2222);
        for n in [1, 2, 4, 8] {
            assert_eq!(shard_for_frame(&a, n), shard_for_frame(&a.clone(), n));
            assert!(shard_for_frame(&a, n) < n);
            assert!(shard_for_frame(&b, n) < n);
        }
        // Enough distinct flows spread over more than one worker.
        let hits: std::collections::HashSet<usize> = (0..64u16)
            .map(|i| shard_for_frame(&tcp_frame(0x0a00_0100 + u32::from(i), 1000 + i), 4))
            .collect();
        assert!(hits.len() > 1, "64 flows must not all land on one of 4 workers");
        // Single worker short-circuits.
        assert_eq!(shard_for_frame(&a, 1), 0);
        assert_eq!(shard_for_frame(&[], 4), shard_for_frame(&[], 4));
    }
}
