//! The control channel: batched control operations with a calibrated
//! latency model.
//!
//! The paper drives its Tofino through `bfrt_grpc`; update delay (Table 1)
//! is dominated by per-entry write RPCs plus per-batch overhead. The
//! [`ControlChannel`] reproduces that cost structure against the simulated
//! clock while applying each operation atomically to the switch, so the
//! consistency experiments can interleave packets between operations of a
//! batch.

use crate::clock::{Nanos, SimClock};
use crate::error::{SimError, SimResult};
use crate::fault::{FaultKind, FaultPlan};
use crate::snapshot::{AppliedOp, SnapshotPublisher};
use crate::switch::{ControlOp, OpResult, Switch};
use crate::telemetry::Histogram;

/// Per-operation latency model, calibrated against the prototype's
/// `bfrt_grpc` measurements (see EXPERIMENTS.md, Table 1).
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Per insert.
    pub per_insert: Nanos,
    /// Per delete.
    pub per_delete: Nanos,
    /// Per reg write.
    pub per_reg_write: Nanos,
    /// Per reg read.
    pub per_reg_read: Nanos,
    /// Fixed overhead per batch (RPC setup, session commit).
    pub per_batch: Nanos,
    /// Marginal per-op costs on the vectored path.
    pub vectored: VectoredModel,
}

/// Marginal per-operation costs on the *vectored* path: the whole batch
/// ships as one bulk RPC (the `bfrt_grpc` table-operation vector RBFRT
/// exploits), so each operation pays only its share of serialization and
/// driver work instead of a full RPC round trip. The per-batch overhead
/// still applies once.
#[derive(Debug, Clone, Copy)]
pub struct VectoredModel {
    /// Per insert.
    pub per_insert: Nanos,
    /// Per delete.
    pub per_delete: Nanos,
    /// Per reg write.
    pub per_reg_write: Nanos,
    /// Per reg read.
    pub per_reg_read: Nanos,
}

impl Default for VectoredModel {
    fn default() -> Self {
        VectoredModel {
            per_insert: Nanos::from_micros(30),
            per_delete: Nanos::from_micros(20),
            per_reg_write: Nanos::from_micros(5),
            per_reg_read: Nanos::from_micros(5),
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            per_insert: Nanos::from_micros(330),
            per_delete: Nanos::from_micros(250),
            per_reg_write: Nanos::from_micros(25),
            per_reg_read: Nanos::from_micros(25),
            per_batch: Nanos::from_micros(600),
            vectored: VectoredModel::default(),
        }
    }
}

impl LatencyModel {
    /// Cost of.
    pub fn cost_of(&self, op: &ControlOp) -> Nanos {
        match op {
            ControlOp::InsertEntry { .. } => self.per_insert,
            ControlOp::DeleteEntry { .. } => self.per_delete,
            ControlOp::WriteReg { .. } => self.per_reg_write,
            ControlOp::ReadReg { .. } | ControlOp::ReadRegRange { .. } => self.per_reg_read,
            // A range reset is a DMA-style bulk operation billed as one
            // register write regardless of length.
            ControlOp::ResetRegRange { .. } => self.per_reg_write,
        }
    }

    /// Marginal cost of one op inside a vectored batch.
    pub fn vectored_cost_of(&self, op: &ControlOp) -> Nanos {
        match op {
            ControlOp::InsertEntry { .. } => self.vectored.per_insert,
            ControlOp::DeleteEntry { .. } => self.vectored.per_delete,
            ControlOp::WriteReg { .. } => self.vectored.per_reg_write,
            ControlOp::ReadReg { .. } | ControlOp::ReadRegRange { .. } => {
                self.vectored.per_reg_read
            }
            ControlOp::ResetRegRange { .. } => self.vectored.per_reg_write,
        }
    }
}

/// What a timed-out batch RPC costs before the channel gives up — the
/// client-side deadline, charged to the simulated clock so retry/backoff
/// shows up in update-delay telemetry.
pub const BATCH_TIMEOUT_COST: Nanos = Nanos(100_000_000);

/// The outcome of a checked batch: the results of the *applied prefix*,
/// the modeled latency, and the error that stopped the batch early (if
/// any). This is the transactional controller's view — unlike
/// [`ControlChannel::apply_batch`], a fault does not discard the prefix's
/// results, so the caller knows exactly what to undo.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Results of the ops that applied, in order.
    pub results: Vec<OpResult>,
    /// Modeled latency of the (possibly truncated) batch.
    pub cost: Nanos,
    /// Why the batch stopped before applying every op; `None` = complete.
    pub error: Option<SimError>,
}

impl BatchOutcome {
    /// Collapse to the legacy fail-stop result shape.
    pub fn into_result(self) -> SimResult<(Vec<OpResult>, Nanos)> {
        match self.error {
            Some(e) => Err(e),
            None => Ok((self.results, self.cost)),
        }
    }
}

/// A control session against one switch.
#[derive(Debug, Clone)]
pub struct ControlChannel {
    /// Model.
    pub model: LatencyModel,
    /// Clock.
    pub clock: SimClock,
    /// Latency histogram over every *mutating* operation applied through
    /// this channel (inserts, deletes, register writes, range resets), in
    /// nanoseconds. Always on: the control path is cold, so the histogram
    /// update is free compared to the modeled RPC itself.
    pub write_latency: Histogram,
    /// Deterministic fault schedule. The default (disarmed) plan never
    /// fires and costs two branch-on-empty checks per batch.
    pub fault: FaultPlan,
    connected: bool,
    /// Snapshot publication for parallel data-plane workers (see
    /// [`crate::snapshot`]). `None` (the default) keeps every batch on a
    /// single branch-not-taken — the same zero-overhead discipline as the
    /// disabled flight recorder.
    publisher: Option<SnapshotPublisher>,
}

impl Default for ControlChannel {
    fn default() -> Self {
        ControlChannel::new(LatencyModel::default())
    }
}

impl ControlChannel {
    /// Construct with defaults appropriate to the type.
    pub fn new(model: LatencyModel) -> ControlChannel {
        ControlChannel {
            model,
            clock: SimClock::new(),
            // Geometric 10 µs … 20.5 ms edges bracket the calibrated
            // per-op costs (25 µs register writes, 330 µs inserts).
            write_latency: Histogram::exponential(10_000, 2, 12),
            fault: FaultPlan::none(),
            connected: true,
            publisher: None,
        }
    }

    /// Start publishing every applied batch as an atomic snapshot delta
    /// (idempotent). Returns the publisher so callers can
    /// [`subscribe`](SnapshotPublisher::subscribe) worker readers.
    pub fn enable_snapshots(&mut self) -> &mut SnapshotPublisher {
        self.publisher.get_or_insert_with(SnapshotPublisher::new)
    }

    /// The snapshot publisher, when enabled.
    pub fn snapshots(&self) -> Option<&SnapshotPublisher> {
        self.publisher.as_ref()
    }

    /// The latest published snapshot generation; 0 when publication is
    /// disabled or nothing has been published yet.
    pub fn snapshot_generation(&self) -> u64 {
        self.publisher.as_ref().map_or(0, |p| p.generation())
    }

    /// The channel can reach the device. `false` after a
    /// [`FaultKind::ChannelDrop`] until [`reconnect`](Self::reconnect).
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Re-establish a dropped channel (models re-opening the gRPC
    /// session).
    pub fn reconnect(&mut self) {
        self.connected = true;
    }

    /// Apply a batch of operations in order, advancing the simulated clock.
    /// Returns the results and the total batch latency.
    ///
    /// Fail-stop semantics: the batch aborts at the first failing
    /// operation. Everything already applied stays applied — exactly the
    /// partial-state hazard the paper's consistent-update ordering is
    /// designed to make harmless.
    pub fn apply_batch(
        &mut self,
        sw: &mut Switch,
        ops: &[ControlOp],
    ) -> SimResult<(Vec<OpResult>, Nanos)> {
        self.apply_batch_impl(sw, ops, false).into_result()
    }

    /// [`apply_batch`](Self::apply_batch) on the vectored path: the batch
    /// ships as one ordered bulk RPC, so each op is billed its marginal
    /// [`VectoredModel`] cost instead of a full RPC round trip. Semantics
    /// are otherwise identical — per-op atomicity, fail-stop with the
    /// applied prefix kept, and the same batch begin/end trace events.
    pub fn apply_batch_vectored(
        &mut self,
        sw: &mut Switch,
        ops: &[ControlOp],
    ) -> SimResult<(Vec<OpResult>, Nanos)> {
        self.apply_batch_impl(sw, ops, true).into_result()
    }

    /// The transactional interface: like [`apply_batch`](Self::apply_batch)
    /// but a fault keeps the applied prefix's results, so the caller can
    /// undo exactly what landed. Consults the armed [`FaultPlan`].
    pub fn apply_batch_checked(
        &mut self,
        sw: &mut Switch,
        ops: &[ControlOp],
        vectored: bool,
    ) -> BatchOutcome {
        self.apply_batch_impl(sw, ops, vectored)
    }

    fn apply_batch_impl(
        &mut self,
        sw: &mut Switch,
        ops: &[ControlOp],
        vectored: bool,
    ) -> BatchOutcome {
        let start = self.clock.now();
        // A dropped channel fails the RPC client-side: the device never
        // sees the batch, and no time is modeled (the failure is
        // immediate).
        if !self.connected {
            return BatchOutcome {
                results: Vec::new(),
                cost: Nanos(0),
                error: Some(SimError::ChannelDown),
            };
        }
        // Batch-level faults fire before anything reaches the device.
        if let Some(f) = self.fault.batch_fault(ops.len()) {
            let at = self.fault.ops_attempted();
            let (cost, error) = match f {
                FaultKind::BatchTimeout => {
                    // The RPC burns its client deadline, then errors out.
                    self.clock.advance(BATCH_TIMEOUT_COST);
                    (BATCH_TIMEOUT_COST, SimError::ChannelTimeout)
                }
                FaultKind::ChannelDrop => {
                    self.connected = false;
                    (Nanos(0), SimError::ChannelDown)
                }
                // `batch_fault` only ever fires batch-level kinds.
                FaultKind::FailOp | FaultKind::DeviceReset => unreachable!(),
            };
            if let Some(t) = sw.trace_mut() {
                t.set_now(self.clock.now());
                t.fault_injected(f, at);
            }
            return BatchOutcome { results: Vec::new(), cost, error: Some(error) };
        }
        let mut total = self.model.per_batch;
        let mut results = Vec::with_capacity(ops.len());
        let mut error = None;
        // Collect what actually lands for snapshot publication. With no
        // publisher installed this is a branch-not-taken per op.
        let mut applied: Option<Vec<AppliedOp>> =
            self.publisher.as_ref().map(|_| Vec::with_capacity(ops.len()));
        // Open a control-track batch span in the flight recorder (no-op
        // when tracing is off). The batch id lets the invariant checker
        // flag any packet event that lands inside the critical section.
        let batch = sw.trace_mut().map(|t| {
            t.set_now(start);
            t.batch_begin(ops.len())
        });
        for op in ops {
            // Op-level faults fire *instead of* applying the op.
            if let Some(f) = self.fault.op_fault(op) {
                let at = self.fault.ops_attempted() - 1;
                error = Some(match f {
                    FaultKind::FailOp => SimError::FaultInjected { at_op: at },
                    FaultKind::DeviceReset => {
                        sw.reset_device();
                        // The wipe is device state a worker must mirror:
                        // it rides the delta in sequence, after the
                        // applied prefix.
                        if let Some(a) = applied.as_mut() {
                            a.push(AppliedOp::Reset);
                        }
                        SimError::DeviceReset { generation: sw.generation() }
                    }
                    // `op_fault` only ever fires op-level kinds.
                    FaultKind::BatchTimeout | FaultKind::ChannelDrop => unreachable!(),
                });
                if let (Some(_), Some(t)) = (batch, sw.trace_mut()) {
                    t.fault_injected(f, at);
                }
                break;
            }
            let r = match sw.apply_op(op) {
                Ok(r) => r,
                Err(e) => {
                    // Fail-stop: the batch stops, the applied prefix stays
                    // on the device.
                    error = Some(e);
                    break;
                }
            };
            let cost = if vectored {
                self.model.vectored_cost_of(op)
            } else {
                self.model.cost_of(op)
            };
            total += cost;
            if matches!(
                op,
                ControlOp::InsertEntry { .. }
                    | ControlOp::DeleteEntry { .. }
                    | ControlOp::WriteReg { .. }
                    | ControlOp::ResetRegRange { .. }
            ) {
                self.write_latency.observe(cost.0);
            }
            if let (Some(_), Some(t)) = (batch, sw.trace_mut()) {
                t.control_op(op, &r);
            }
            if let Some(a) = applied.as_mut() {
                match (op, &r) {
                    (ControlOp::InsertEntry { table, entry }, OpResult::Inserted(h)) => {
                        a.push(AppliedOp::Insert {
                            table: *table,
                            handle: *h,
                            entry: entry.clone(),
                        });
                    }
                    (ControlOp::DeleteEntry { table, handle }, _) => {
                        a.push(AppliedOp::Delete { table: *table, handle: *handle });
                    }
                    (ControlOp::WriteReg { array, addr, value }, _) => {
                        a.push(AppliedOp::WriteReg {
                            array: *array,
                            addr: *addr,
                            value: *value,
                        });
                    }
                    (ControlOp::ResetRegRange { array, start, len }, _) => {
                        a.push(AppliedOp::ResetRegRange {
                            array: *array,
                            start: *start,
                            len: *len,
                        });
                    }
                    // Reads change nothing; workers need not see them.
                    _ => {}
                }
            }
            results.push(r);
        }
        // The truncated batch still consumed its modeled time; closing the
        // span on every path keeps the checker's critical section from
        // leaking into later packets.
        self.clock.advance(total);
        if let (Some(b), Some(t)) = (batch, sw.trace_mut()) {
            t.batch_end(b, results.len(), total);
            t.set_now(self.clock.now());
        }
        // Publish the applied prefix — everything that is actually on the
        // device, fault or not — as one atomic delta. Batches that touched
        // nothing (all-reads, or faulted before the first op) publish
        // nothing: workers' state already matches the master's.
        if let (Some(p), Some(ops)) = (self.publisher.as_mut(), applied) {
            if !ops.is_empty() {
                let epoch = sw
                    .telemetry()
                    .map(|m| m.epoch)
                    .or_else(|| sw.trace().map(|t| t.epoch()))
                    .unwrap_or(0);
                p.publish(epoch, ops);
            }
        }
        BatchOutcome { results, cost: total, error }
    }

    /// Pure cost estimation without touching a switch (used by planners).
    pub fn estimate_batch(&self, ops: &[ControlOp]) -> Nanos {
        ops.iter().fold(self.model.per_batch, |acc, op| acc + self.model.cost_of(op))
    }

    /// [`estimate_batch`](Self::estimate_batch) for the vectored path.
    pub fn estimate_batch_vectored(&self, ops: &[ControlOp]) -> Nanos {
        ops.iter()
            .fold(self.model.per_batch, |acc, op| acc + self.model.vectored_cost_of(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::FieldTable;
    use crate::parser::{HeaderDef, HeaderField, NextState, ParseState, Parser};
    use crate::pipeline::{Gress, Pipeline, StageLimits};
    use crate::switch::{SwitchConfig, TableRef};
    use crate::table::{KeySpec, MatchKind, MatchValue, TableEntry};
    use crate::action::ActionDef;

    fn switch_with_one_table() -> Switch {
        let mut ft = FieldTable::new();
        let f = ft.register("hdr.x.v", 8).unwrap();
        let p = ft.register("hdr.x.$valid", 1).unwrap();
        let mut parser = Parser::new();
        let h = parser.add_header(HeaderDef {
            name: "x".into(),
            len_bytes: 1,
            fields: vec![HeaderField { field: f, bit_offset: 0, bits: 8 }],
            presence: p,
            checksum_at: None,
            bitmap_bit: 0,
        });
        let s = parser.add_state(ParseState {
            header: h,
            select: None,
            transitions: vec![],
            default: NextState::Accept,
        });
        parser.set_start(s);
        let mut ig = Pipeline::new(Gress::Ingress, 1, StageLimits::default());
        ig.stage_mut(0).unwrap().add_table(crate::table::Table::new(
            "t",
            KeySpec::new(vec![(f, MatchKind::Exact)]),
            vec![ActionDef::noop("n")],
            16,
        ));
        let eg = Pipeline::new(Gress::Egress, 1, StageLimits::default());
        let mut sw = Switch::assemble(SwitchConfig::default(), ft, parser, ig, eg);
        sw.provision().unwrap();
        sw
    }

    fn insert_op(v: u64) -> ControlOp {
        ControlOp::InsertEntry {
            table: TableRef { gress: Gress::Ingress, stage: 0, table: 0 },
            entry: TableEntry {
                matches: vec![MatchValue::Exact(v)],
                priority: 0,
                action: 0,
                data: vec![],
            },
        }
    }

    #[test]
    fn batch_cost_is_overhead_plus_per_op() {
        let mut sw = switch_with_one_table();
        let mut ch = ControlChannel::default();
        let ops = vec![insert_op(1), insert_op(2), insert_op(3)];
        let (results, cost) = ch.apply_batch(&mut sw, &ops).unwrap();
        assert_eq!(results.len(), 3);
        let expect = ch.model.per_batch + Nanos(3 * ch.model.per_insert.0);
        assert_eq!(cost, expect);
        assert_eq!(ch.clock.now(), expect);
        assert_eq!(ch.estimate_batch(&ops), expect);
    }

    #[test]
    fn vectored_batch_applies_same_ops_at_marginal_cost() {
        let mut sw = switch_with_one_table();
        let mut ch = ControlChannel::default();
        let ops = vec![insert_op(1), insert_op(2), insert_op(3)];
        let (results, cost) = ch.apply_batch_vectored(&mut sw, &ops).unwrap();
        assert_eq!(results.len(), 3);
        let expect = ch.model.per_batch + Nanos(3 * ch.model.vectored.per_insert.0);
        assert_eq!(cost, expect);
        assert_eq!(ch.estimate_batch_vectored(&ops), expect);
        assert!(cost < ch.estimate_batch(&ops), "vectoring amortizes per-op latency");
        // All three entries really landed.
        let tref = TableRef { gress: Gress::Ingress, stage: 0, table: 0 };
        assert_eq!(sw.table(tref).unwrap().len(), 3);
    }

    #[test]
    fn injected_failop_keeps_prefix_results() {
        use crate::fault::FaultTrigger;
        let mut sw = switch_with_one_table();
        let mut ch = ControlChannel {
            fault: FaultPlan::new(vec![FaultTrigger {
                at: 1,
                op_kind: None,
                fault: FaultKind::FailOp,
            }]),
            ..Default::default()
        };
        let ops = vec![insert_op(1), insert_op(2), insert_op(3)];
        let out = ch.apply_batch_checked(&mut sw, &ops, false);
        assert_eq!(out.error, Some(SimError::FaultInjected { at_op: 1 }));
        assert_eq!(out.results.len(), 1, "only the first op applied");
        let tref = TableRef { gress: Gress::Ingress, stage: 0, table: 0 };
        assert_eq!(sw.table(tref).unwrap().len(), 1);
        // The plan is exhausted: the same batch now goes through.
        let out = ch.apply_batch_checked(&mut sw, &[insert_op(4)], false);
        assert!(out.error.is_none());
    }

    #[test]
    fn timeout_applies_nothing_and_burns_the_deadline() {
        use crate::fault::FaultTrigger;
        let mut sw = switch_with_one_table();
        let mut ch = ControlChannel {
            fault: FaultPlan::new(vec![FaultTrigger {
                at: 0,
                op_kind: None,
                fault: FaultKind::BatchTimeout,
            }]),
            ..Default::default()
        };
        let out = ch.apply_batch_checked(&mut sw, &[insert_op(1)], false);
        assert_eq!(out.error, Some(SimError::ChannelTimeout));
        assert!(out.results.is_empty());
        assert_eq!(ch.clock.now(), BATCH_TIMEOUT_COST);
        let tref = TableRef { gress: Gress::Ingress, stage: 0, table: 0 };
        assert_eq!(sw.table(tref).unwrap().len(), 0, "device never saw the batch");
        assert!(ch.is_connected());
    }

    #[test]
    fn drop_downs_the_channel_until_reconnect() {
        use crate::fault::FaultTrigger;
        let mut sw = switch_with_one_table();
        let mut ch = ControlChannel {
            fault: FaultPlan::new(vec![FaultTrigger {
                at: 0,
                op_kind: None,
                fault: FaultKind::ChannelDrop,
            }]),
            ..Default::default()
        };
        let out = ch.apply_batch_checked(&mut sw, &[insert_op(1)], false);
        assert_eq!(out.error, Some(SimError::ChannelDown));
        assert!(!ch.is_connected());
        // Every batch fails while down, even with the plan exhausted.
        let out = ch.apply_batch_checked(&mut sw, &[insert_op(1)], false);
        assert_eq!(out.error, Some(SimError::ChannelDown));
        ch.reconnect();
        assert!(ch.apply_batch_checked(&mut sw, &[insert_op(1)], false).error.is_none());
    }

    #[test]
    fn device_reset_wipes_state_and_bumps_generation() {
        use crate::fault::FaultTrigger;
        let mut sw = switch_with_one_table();
        let mut ch = ControlChannel::default();
        let tref = TableRef { gress: Gress::Ingress, stage: 0, table: 0 };
        ch.apply_batch(&mut sw, &[insert_op(1), insert_op(2)]).unwrap();
        assert_eq!(sw.generation(), 0);
        // A freshly armed plan counts ops from zero.
        ch.fault = FaultPlan::new(vec![FaultTrigger {
            at: 2,
            op_kind: None,
            fault: FaultKind::DeviceReset,
        }]);
        let ops = vec![insert_op(3), insert_op(4), insert_op(5)];
        let out = ch.apply_batch_checked(&mut sw, &ops, false);
        assert_eq!(out.error, Some(SimError::DeviceReset { generation: 1 }));
        assert_eq!(out.results.len(), 2, "two ops of this batch applied before the reset");
        assert_eq!(sw.generation(), 1);
        assert_eq!(sw.table(tref).unwrap().len(), 0, "reset wiped everything");
    }

    #[test]
    fn snapshots_publish_applied_prefix_atomically() {
        use crate::fault::FaultTrigger;
        use crate::snapshot::AppliedOp;
        let mut sw = switch_with_one_table();
        let mut ch = ControlChannel::default();
        let mut reader = ch.enable_snapshots().subscribe();
        // A clean batch publishes exactly once, whole.
        ch.apply_batch(&mut sw, &[insert_op(1), insert_op(2)]).unwrap();
        assert_eq!(ch.snapshot_generation(), 1);
        let got = reader.poll();
        assert_eq!(got.len(), 1, "one batch, one delta");
        assert_eq!(got[0].ops.len(), 2);
        assert!(matches!(
            got[0].ops[0],
            AppliedOp::Insert { handle: crate::table::EntryHandle(1), .. }
        ));
        // A faulted batch publishes only its applied prefix.
        ch.fault = FaultPlan::new(vec![FaultTrigger {
            at: 1,
            op_kind: None,
            fault: FaultKind::FailOp,
        }]);
        let out = ch.apply_batch_checked(&mut sw, &[insert_op(3), insert_op(4)], false);
        assert!(out.error.is_some());
        let got = reader.poll();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ops.len(), 1, "only the pre-fault prefix landed");
        // A batch that never reaches the device publishes nothing.
        ch.fault = FaultPlan::new(vec![FaultTrigger {
            at: 0,
            op_kind: None,
            fault: FaultKind::BatchTimeout,
        }]);
        ch.apply_batch_checked(&mut sw, &[insert_op(5)], false);
        assert!(reader.poll().is_empty(), "timed-out batch applied nothing");
        assert_eq!(ch.snapshot_generation(), 2);
    }

    #[test]
    fn worker_adopting_deltas_converges_to_master() {
        let mut master = switch_with_one_table();
        let mut ch = ControlChannel::default();
        let mut reader = ch.enable_snapshots().subscribe();
        let mut worker = master.fork_worker();
        let tref = TableRef { gress: Gress::Ingress, stage: 0, table: 0 };
        ch.apply_batch(&mut master, &[insert_op(7), insert_op(8)]).unwrap();
        let (r, _) = ch
            .apply_batch(
                &mut master,
                &[ControlOp::DeleteEntry { table: tref, handle: crate::table::EntryHandle(1) }],
            )
            .unwrap();
        assert_eq!(r[0], OpResult::Deleted);
        for d in reader.poll().to_vec() {
            worker.adopt_delta(&d).unwrap();
        }
        assert_eq!(worker.table(tref).unwrap().len(), master.table(tref).unwrap().len());
        // Handle allocation stays aligned: the next insert on either side
        // would get the same handle.
        let (wr, _) = ch.apply_batch(&mut master, &[insert_op(9)]).unwrap();
        for d in reader.poll().to_vec() {
            worker.adopt_delta(&d).unwrap();
        }
        let OpResult::Inserted(mh) = wr[0] else { panic!("insert") };
        assert!(
            worker.table(tref).unwrap().contains(mh),
            "worker sees the master-assigned handle"
        );
    }

    #[test]
    fn failed_batch_keeps_applied_prefix() {
        let mut sw = switch_with_one_table();
        let mut ch = ControlChannel::default();
        let tref = TableRef { gress: Gress::Ingress, stage: 0, table: 0 };
        let bad = ControlOp::DeleteEntry {
            table: tref,
            handle: crate::table::EntryHandle(999),
        };
        let ops = vec![insert_op(1), bad, insert_op(2)];
        assert!(ch.apply_batch(&mut sw, &ops).is_err());
        // The first insert survived: partial state, as in real hardware.
        assert_eq!(sw.table(tref).unwrap().len(), 1);
    }
}
