//! Pipeline-wide telemetry: counters, histograms, and the recorder hooks
//! the rest of the simulator reports into.
//!
//! The design splits *instrumentation points* from *storage*:
//!
//! * [`Recorder`] is the hook trait. Every method has a no-op default
//!   body, and the simulator's hot paths call it through a `&mut dyn
//!   Recorder` that is the shared [`NopRecorder`] unless telemetry was
//!   explicitly enabled — disabled telemetry costs one virtual call to an
//!   empty body per event, which is below measurement noise next to a
//!   table lookup (see `bench/benches/dataplane.rs`).
//! * [`MetricsRecorder`] is the storage implementation: per-stage
//!   match/miss/action counters, SALU read-modify-write counts, the
//!   parser-path histogram keyed by parse bitmap, traffic-manager verdict
//!   counters, and the active telemetry **epoch** — a label the control
//!   plane bumps at every program lifecycle event so packet-side
//!   observations can be correlated with control-side spans.
//!
//! Everything here serializes through the workspace's `serde` to one JSON
//! document (see `docs/TELEMETRY.md` for the schema).

use std::collections::BTreeMap;

use crate::pipeline::Gress;
use crate::tm::Verdict;

/// A monotonically increasing event count.
///
/// Wraps `u64` so merging and rate math live in one place and so the JSON
/// schema can evolve independently of the storage type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Zero.
    pub const ZERO: Counter = Counter(0);

    /// Increment by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Fold another counter in (snapshot aggregation).
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }

    /// Difference against an earlier snapshot of the same counter.
    pub fn delta_since(self, earlier: Counter) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl serde::Serialize for Counter {
    fn to_value(&self) -> serde::Value {
        serde::Value::U64(self.0)
    }
}

impl serde::Deserialize for Counter {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        <u64 as serde::Deserialize>::from_value(v).map(Counter)
    }
}

/// A fixed-bound histogram over `u64` samples (latencies in nanoseconds,
/// sizes in bytes).
///
/// `bounds` are inclusive upper bucket edges in ascending order; one
/// overflow bucket past the last edge is implicit, so `counts.len() ==
/// bounds.len() + 1`. Exact `count`/`sum`/`min`/`max` ride alongside the
/// buckets, so means are exact and only quantiles are bucket-resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

serde::impl_serde_struct!(Histogram { bounds, counts, count, sum, min, max });

impl Histogram {
    /// Build with explicit ascending bucket edges.
    pub fn new(bounds: Vec<u64>) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts, count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Build with `n` geometric edges `start, start*factor, …` — the
    /// natural shape for latency distributions.
    pub fn exponential(start: u64, factor: u64, n: usize) -> Histogram {
        assert!(start > 0 && factor > 1, "degenerate geometric edges");
        let mut edge = start;
        let bounds = (0..n)
            .map(|_| {
                let e = edge;
                edge = edge.saturating_mul(factor);
                e
            })
            .collect();
        Histogram::new(bounds)
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket edges.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Bucket counts (`bounds.len() + 1` entries, last is overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper-edge estimate of the `q`-quantile (0 ≤ q ≤ 1), `None` when
    /// empty. Resolution is one bucket; the overflow bucket reports the
    /// exact observed maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(idx).copied().unwrap_or(self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram with identical edges in.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram edges differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Match/action/SALU counters of one physical stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Table lookups that matched an installed entry.
    pub hits: Counter,
    /// Table lookups that fell through (default action or no-op).
    pub misses: Counter,
    /// Actions executed (hit or default).
    pub actions: Counter,
    /// SALU read-modify-write invocations touching register memory.
    pub salu_reads: Counter,
    /// SALU invocations that committed a write.
    pub salu_writes: Counter,
}

serde::impl_serde_struct!(StageMetrics { hits, misses, actions, salu_reads, salu_writes });

impl StageMetrics {
    /// Fold another stage's counters in.
    pub fn merge(&mut self, other: &StageMetrics) {
        self.hits.merge(other.hits);
        self.misses.merge(other.misses);
        self.actions.merge(other.actions);
        self.salu_reads.merge(other.salu_reads);
        self.salu_writes.merge(other.salu_writes);
    }
}

/// Traffic-manager outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TmMetrics {
    /// Unicast forwards enqueued toward an egress port.
    pub forwarded: Counter,
    /// `RETURN` reflections out the ingress port.
    pub returned: Counter,
    /// Drops (explicit verdict, no route, or recirculation cap).
    pub dropped: Counter,
    /// Recirculation passes enqueued on the loopback port.
    pub recirculated: Counter,
    /// Multicast replications enqueued.
    pub multicast: Counter,
    /// `REPORT` copies punted to the CPU port.
    pub reports: Counter,
}

serde::impl_serde_struct!(TmMetrics {
    forwarded,
    returned,
    dropped,
    recirculated,
    multicast,
    reports,
});

impl TmMetrics {
    /// Everything the TM enqueued somewhere (drops excluded).
    pub fn enqueued(&self) -> u64 {
        self.forwarded.get()
            + self.returned.get()
            + self.recirculated.get()
            + self.multicast.get()
    }

    /// Fold another TM's counters in.
    pub fn merge(&mut self, other: &TmMetrics) {
        self.forwarded.merge(other.forwarded);
        self.returned.merge(other.returned);
        self.dropped.merge(other.dropped);
        self.recirculated.merge(other.recirculated);
        self.multicast.merge(other.multicast);
        self.reports.merge(other.reports);
    }
}

/// The hook trait the simulator reports events into.
///
/// Every method has an empty default body: implementors override only
/// what they store, and the [`NopRecorder`] overrides nothing.
pub trait Recorder {
    /// The program context for subsequent per-stage events: the owning
    /// program id read out of the PHV (`p4rp.prog_id`, bound by the
    /// filter table's `set_prog`). 0 means "no program bound yet" — the
    /// stage-0 filter lookup itself always lands there, because the
    /// binding action has not executed when the lookup is recorded.
    /// Only emitted when attribution is enabled on the switch.
    fn prog_ctx(&mut self, prog: u16) {
        let _ = prog;
    }

    /// One table lookup finished in `gress` stage `stage`; `hit` is true
    /// for an installed-entry match (default actions count as misses).
    fn table_lookup(&mut self, gress: Gress, stage: usize, hit: bool) {
        let _ = (gress, stage, hit);
    }

    /// One action body executed in `gress` stage `stage`.
    fn action_executed(&mut self, gress: Gress, stage: usize) {
        let _ = (gress, stage);
    }

    /// One SALU read-modify-write in `gress` stage `stage`; `wrote` is
    /// true when the cycle committed a memory write.
    fn salu_rmw(&mut self, gress: Gress, stage: usize, wrote: bool) {
        let _ = (gress, stage, wrote);
    }

    /// The parser accepted a packet along the path named by `bitmap`.
    fn parser_path(&mut self, bitmap: u16) {
        let _ = bitmap;
    }

    /// The traffic manager resolved a verdict (`report_copy` riding along).
    fn tm_decision(&mut self, verdict: Verdict, report_copy: bool) {
        let _ = (verdict, report_copy);
    }

    /// A frame entered the switch: `packet` is the switch-global packet
    /// id that stamps every subsequent per-packet event (flight-recorder
    /// context; aggregate storage ignores it).
    fn packet_begin(&mut self, packet: u64, port: u16, len: u32) {
        let _ = (packet, port, len);
    }

    /// The packet's parsed five-tuple (addresses big-endian `u32`), when
    /// the frame carries IPv4 + TCP/UDP.
    fn packet_flow(&mut self, packet: u64, src: u32, dst: u32, sport: u16, dport: u16, proto: u8) {
        let _ = (packet, src, dst, sport, dport, proto);
    }

    /// A pipeline pass began (1 = original injection, ≥2 = recirculation).
    fn pass_begin(&mut self, packet: u64, pass: u8) {
        let _ = (packet, pass);
    }

    /// The packet left the switch after `passes` passes.
    fn packet_end(&mut self, packet: u64, passes: u8, dropped: bool) {
        let _ = (packet, passes, dropped);
    }
}

/// The recorder used when telemetry is disabled: stores nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopRecorder;

impl Recorder for NopRecorder {}

/// Fans every hook out to two recorders — how the switch feeds the
/// aggregate [`MetricsRecorder`] and the flight recorder
/// ([`crate::trace::TraceBuffer`]) from one `&mut dyn Recorder` borrow
/// when both are enabled. Built per pass on the stack; when at most one
/// sink is active the switch passes that sink directly and this type never
/// materializes.
pub struct TeeRecorder<'a> {
    /// First sink.
    pub a: &'a mut dyn Recorder,
    /// Second sink.
    pub b: &'a mut dyn Recorder,
}

impl Recorder for TeeRecorder<'_> {
    fn prog_ctx(&mut self, prog: u16) {
        self.a.prog_ctx(prog);
        self.b.prog_ctx(prog);
    }

    fn table_lookup(&mut self, gress: Gress, stage: usize, hit: bool) {
        self.a.table_lookup(gress, stage, hit);
        self.b.table_lookup(gress, stage, hit);
    }

    fn action_executed(&mut self, gress: Gress, stage: usize) {
        self.a.action_executed(gress, stage);
        self.b.action_executed(gress, stage);
    }

    fn salu_rmw(&mut self, gress: Gress, stage: usize, wrote: bool) {
        self.a.salu_rmw(gress, stage, wrote);
        self.b.salu_rmw(gress, stage, wrote);
    }

    fn parser_path(&mut self, bitmap: u16) {
        self.a.parser_path(bitmap);
        self.b.parser_path(bitmap);
    }

    fn tm_decision(&mut self, verdict: Verdict, report_copy: bool) {
        self.a.tm_decision(verdict, report_copy);
        self.b.tm_decision(verdict, report_copy);
    }

    fn packet_begin(&mut self, packet: u64, port: u16, len: u32) {
        self.a.packet_begin(packet, port, len);
        self.b.packet_begin(packet, port, len);
    }

    fn packet_flow(&mut self, packet: u64, src: u32, dst: u32, sport: u16, dport: u16, proto: u8) {
        self.a.packet_flow(packet, src, dst, sport, dport, proto);
        self.b.packet_flow(packet, src, dst, sport, dport, proto);
    }

    fn pass_begin(&mut self, packet: u64, pass: u8) {
        self.a.pass_begin(packet, pass);
        self.b.pass_begin(packet, pass);
    }

    fn packet_end(&mut self, packet: u64, passes: u8, dropped: bool) {
        self.a.packet_end(packet, passes, dropped);
        self.b.packet_end(packet, passes, dropped);
    }
}

/// Per-gress stage metric vectors, grown on demand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineMetrics {
    /// Per-stage counters, index = physical stage.
    pub stages: Vec<StageMetrics>,
}

serde::impl_serde_struct!(PipelineMetrics { stages });

impl PipelineMetrics {
    fn stage_mut(&mut self, idx: usize) -> &mut StageMetrics {
        if idx >= self.stages.len() {
            self.stages.resize(idx + 1, StageMetrics::default());
        }
        &mut self.stages[idx]
    }

    /// Aggregate over all stages.
    pub fn total(&self) -> StageMetrics {
        let mut t = StageMetrics::default();
        for s in &self.stages {
            t.merge(s);
        }
        t
    }

    /// Fold another pipeline's counters in, stage by stage (growing to the
    /// longer of the two).
    pub fn merge(&mut self, other: &PipelineMetrics) {
        for (idx, s) in other.stages.iter().enumerate() {
            self.stage_mut(idx).merge(s);
        }
    }
}

/// One program's share of the data-plane counters, indexed by the
/// program id the PHV carried when the event fired (see
/// [`Recorder::prog_ctx`]). Slot 0 collects the unattributed remainder —
/// events recorded before the filter table bound a program to the packet
/// — so summing every slot reproduces the global counters exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramMetrics {
    /// Packets whose final pass ended under this program.
    pub packets: Counter,
    /// TM forward/return/multicast verdicts under this program.
    pub forwarded: Counter,
    /// TM drop verdicts under this program.
    pub drops: Counter,
    /// TM recirculation verdicts under this program.
    pub recirc_passes: Counter,
    /// Per-stage ingress counters attributed to this program.
    pub ingress: PipelineMetrics,
    /// Per-stage egress counters attributed to this program.
    pub egress: PipelineMetrics,
}

serde::impl_serde_struct!(ProgramMetrics {
    packets,
    forwarded,
    drops,
    recirc_passes,
    ingress,
    egress,
});

impl ProgramMetrics {
    fn gress_mut(&mut self, gress: Gress) -> &mut PipelineMetrics {
        match gress {
            Gress::Ingress => &mut self.ingress,
            Gress::Egress => &mut self.egress,
        }
    }

    /// Total installed-entry hits across both gresses.
    pub fn hits(&self) -> u64 {
        self.ingress.total().hits.get() + self.egress.total().hits.get()
    }

    /// Total SALU read-modify-writes across both gresses.
    pub fn salu_rmws(&self) -> u64 {
        self.ingress.total().salu_reads.get() + self.egress.total().salu_reads.get()
    }

    /// Fold another program slot's counters in.
    pub fn merge(&mut self, other: &ProgramMetrics) {
        self.packets.merge(other.packets);
        self.forwarded.merge(other.forwarded);
        self.drops.merge(other.drops);
        self.recirc_passes.merge(other.recirc_passes);
        self.ingress.merge(&other.ingress);
        self.egress.merge(&other.egress);
    }
}

/// The storing [`Recorder`]: everything the data plane reports, plus the
/// control plane's current epoch label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRecorder {
    /// Telemetry epoch: bumped by the control plane at every deploy /
    /// revoke / update so packet-side series can be cut at lifecycle
    /// boundaries.
    pub epoch: u64,
    /// Ingress stage counters.
    pub ingress: PipelineMetrics,
    /// Egress stage counters.
    pub egress: PipelineMetrics,
    /// Packets per accepted parser path, keyed by the parse bitmap
    /// formatted as `0x%04x`.
    pub parser_paths: BTreeMap<String, u64>,
    /// Traffic-manager counters.
    pub tm: TmMetrics,
    /// Per-program attribution slots, indexed by program id (`None` =
    /// attribution disabled, the default — every hook then skips the
    /// per-program bookkeeping behind one branch-on-None). Slot 0 holds
    /// unattributed events; the vector grows on demand to the highest
    /// program id observed.
    pub per_prog: Option<Vec<ProgramMetrics>>,
    /// The program id the current packet is bound to (transient recorder
    /// state, reset at `packet_begin`; serialized so snapshots round-trip
    /// field-for-field).
    pub cur_prog: u64,
}

serde::impl_serde_struct!(MetricsRecorder {
    epoch,
    ingress,
    egress,
    parser_paths,
    tm,
    per_prog,
    cur_prog,
});

impl MetricsRecorder {
    /// Fresh, epoch 0.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder::default()
    }

    /// Format a parse bitmap the way [`MetricsRecorder::parser_paths`]
    /// keys it.
    pub fn path_key(bitmap: u16) -> String {
        format!("{bitmap:#06x}")
    }

    fn gress_mut(&mut self, gress: Gress) -> &mut PipelineMetrics {
        match gress {
            Gress::Ingress => &mut self.ingress,
            Gress::Egress => &mut self.egress,
        }
    }

    /// Turn per-program attribution on (idempotent; counters already
    /// accumulated stay global-only). The switch additionally needs to
    /// know which PHV field carries the program id — see
    /// `Switch::set_attribution_field`.
    pub fn enable_attribution(&mut self) {
        self.per_prog.get_or_insert_with(Vec::new);
    }

    /// Whether per-program attribution is on.
    pub fn is_attributing(&self) -> bool {
        self.per_prog.is_some()
    }

    /// The attribution slot for program `prog`, growing the vector on
    /// demand. `None` when attribution is disabled.
    pub fn prog_metrics_mut(&mut self, prog: u64) -> Option<&mut ProgramMetrics> {
        let pp = self.per_prog.as_mut()?;
        let idx = prog as usize;
        if idx >= pp.len() {
            pp.resize(idx + 1, ProgramMetrics::default());
        }
        Some(&mut pp[idx])
    }

    /// The attribution slot for the packet currently in flight.
    fn cur_slot(&mut self) -> Option<&mut ProgramMetrics> {
        let prog = self.cur_prog;
        self.prog_metrics_mut(prog)
    }

    /// Fold another recorder's counters in — the deterministic aggregation
    /// the parallel engine uses to merge per-worker telemetry. Every
    /// counter is additive and parser paths are keyed maps, so the merge
    /// result is independent of worker count and merge order; the epoch
    /// keeps the later (larger) label. Attribution enablement merges as a
    /// union (slot-wise additive when both sides carry slots), and the
    /// transient `cur_prog` keeps the larger value so the merge stays
    /// commutative.
    pub fn merge(&mut self, other: &MetricsRecorder) {
        self.epoch = self.epoch.max(other.epoch);
        self.ingress.merge(&other.ingress);
        self.egress.merge(&other.egress);
        for (k, v) in &other.parser_paths {
            *self.parser_paths.entry(k.clone()).or_insert(0) += v;
        }
        self.tm.merge(&other.tm);
        if let Some(theirs) = &other.per_prog {
            let pp = self.per_prog.get_or_insert_with(Vec::new);
            if pp.len() < theirs.len() {
                pp.resize(theirs.len(), ProgramMetrics::default());
            }
            for (slot, o) in pp.iter_mut().zip(theirs) {
                slot.merge(o);
            }
        }
        self.cur_prog = self.cur_prog.max(other.cur_prog);
    }
}

impl Recorder for MetricsRecorder {
    fn prog_ctx(&mut self, prog: u16) {
        self.cur_prog = u64::from(prog);
    }

    fn packet_begin(&mut self, _packet: u64, _port: u16, _len: u32) {
        // A fresh frame starts unbound; the filter table re-binds it.
        self.cur_prog = 0;
    }

    fn table_lookup(&mut self, gress: Gress, stage: usize, hit: bool) {
        let s = self.gress_mut(gress).stage_mut(stage);
        if hit {
            s.hits.incr();
        } else {
            s.misses.incr();
        }
        if let Some(p) = self.cur_slot() {
            let s = p.gress_mut(gress).stage_mut(stage);
            if hit {
                s.hits.incr();
            } else {
                s.misses.incr();
            }
        }
    }

    fn action_executed(&mut self, gress: Gress, stage: usize) {
        self.gress_mut(gress).stage_mut(stage).actions.incr();
        if let Some(p) = self.cur_slot() {
            p.gress_mut(gress).stage_mut(stage).actions.incr();
        }
    }

    fn salu_rmw(&mut self, gress: Gress, stage: usize, wrote: bool) {
        let s = self.gress_mut(gress).stage_mut(stage);
        s.salu_reads.incr();
        if wrote {
            s.salu_writes.incr();
        }
        if let Some(p) = self.cur_slot() {
            let s = p.gress_mut(gress).stage_mut(stage);
            s.salu_reads.incr();
            if wrote {
                s.salu_writes.incr();
            }
        }
    }

    fn parser_path(&mut self, bitmap: u16) {
        *self.parser_paths.entry(Self::path_key(bitmap)).or_insert(0) += 1;
    }

    fn tm_decision(&mut self, verdict: Verdict, report_copy: bool) {
        match verdict {
            Verdict::Forward(_) => self.tm.forwarded.incr(),
            Verdict::Return => self.tm.returned.incr(),
            Verdict::Drop => self.tm.dropped.incr(),
            Verdict::Recirculate => self.tm.recirculated.incr(),
            Verdict::Multicast(_) => self.tm.multicast.incr(),
        }
        if report_copy {
            self.tm.reports.incr();
        }
        if let Some(p) = self.cur_slot() {
            match verdict {
                Verdict::Forward(_) | Verdict::Return | Verdict::Multicast(_) => {
                    p.forwarded.incr()
                }
                Verdict::Drop => p.drops.incr(),
                Verdict::Recirculate => p.recirc_passes.incr(),
            }
        }
    }

    fn packet_end(&mut self, _packet: u64, _passes: u8, _dropped: bool) {
        if let Some(p) = self.cur_slot() {
            p.packets.incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_arithmetic() {
        let mut c = Counter::ZERO;
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        let snap = c;
        c.add(8);
        assert_eq!(c.delta_since(snap), 8);
        assert_eq!(snap.delta_since(c), 0, "reversed delta saturates");
        let mut m = Counter::ZERO;
        m.merge(c);
        m.merge(snap);
        assert_eq!(m.get(), 92);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for v in [5, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5 + 10 + 11 + 100 + 101 + 5000);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(5000));
        let mean = h.mean().unwrap();
        assert!((mean - (5227.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_resolve_to_bucket_edges() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for _ in 0..90 {
            h.observe(7);
        }
        for _ in 0..10 {
            h.observe(600);
        }
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.95), Some(1000));
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(Histogram::new(vec![1]).quantile(0.5), None);
        // Overflow bucket reports the observed maximum.
        let mut o = Histogram::new(vec![10]);
        o.observe(99);
        assert_eq!(o.quantile(1.0), Some(99));
    }

    #[test]
    fn histogram_merge_requires_same_edges() {
        let mut a = Histogram::exponential(10, 4, 4);
        let mut b = Histogram::exponential(10, 4, 4);
        a.observe(12);
        b.observe(700);
        b.observe(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(3));
        assert_eq!(a.max(), Some(700));
        assert_eq!(a.sum(), 715);
    }

    #[test]
    #[should_panic(expected = "edges differ")]
    fn histogram_merge_mismatch_panics() {
        let mut a = Histogram::new(vec![1, 2]);
        a.merge(&Histogram::new(vec![1, 3]));
    }

    #[test]
    fn exponential_edges() {
        let h = Histogram::exponential(1_000, 10, 4);
        assert_eq!(h.bounds(), &[1_000, 10_000, 100_000, 1_000_000]);
        assert_eq!(h.bucket_counts().len(), 5);
    }

    #[test]
    fn metrics_recorder_routes_events() {
        let mut r = MetricsRecorder::new();
        r.table_lookup(Gress::Ingress, 2, true);
        r.table_lookup(Gress::Ingress, 2, false);
        r.action_executed(Gress::Ingress, 2);
        r.salu_rmw(Gress::Ingress, 2, true);
        r.salu_rmw(Gress::Ingress, 2, false);
        r.table_lookup(Gress::Egress, 0, false);
        r.parser_path(0x0003);
        r.parser_path(0x0003);
        r.parser_path(0x0001);
        r.tm_decision(Verdict::Forward(5), true);
        r.tm_decision(Verdict::Drop, false);
        r.tm_decision(Verdict::Recirculate, false);

        let ig = &r.ingress.stages[2];
        assert_eq!((ig.hits.get(), ig.misses.get(), ig.actions.get()), (1, 1, 1));
        assert_eq!((ig.salu_reads.get(), ig.salu_writes.get()), (2, 1));
        assert_eq!(r.ingress.stages[0], StageMetrics::default(), "untouched stage stays zero");
        assert_eq!(r.egress.stages[0].misses.get(), 1);
        assert_eq!(r.parser_paths.get("0x0003"), Some(&2));
        assert_eq!(r.parser_paths.get("0x0001"), Some(&1));
        assert_eq!(r.tm.forwarded.get(), 1);
        assert_eq!(r.tm.dropped.get(), 1);
        assert_eq!(r.tm.reports.get(), 1);
        assert_eq!(r.tm.enqueued(), 2);
    }

    #[test]
    fn metrics_merge_is_additive_and_order_independent() {
        let mut a = MetricsRecorder::new();
        a.epoch = 2;
        a.table_lookup(Gress::Ingress, 1, true);
        a.parser_path(0x0003);
        a.tm_decision(Verdict::Forward(1), false);
        let mut b = MetricsRecorder::new();
        b.epoch = 5;
        b.table_lookup(Gress::Ingress, 1, false);
        b.table_lookup(Gress::Egress, 3, true);
        b.parser_path(0x0003);
        b.parser_path(0x0001);
        b.tm_decision(Verdict::Drop, true);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.epoch, 5);
        let s = &ab.ingress.stages[1];
        assert_eq!((s.hits.get(), s.misses.get()), (1, 1));
        assert_eq!(ab.egress.stages[3].hits.get(), 1);
        assert_eq!(ab.parser_paths.get("0x0003"), Some(&2));
        assert_eq!(ab.tm.forwarded.get(), 1);
        assert_eq!(ab.tm.dropped.get(), 1);
        assert_eq!(ab.tm.reports.get(), 1);
    }

    #[test]
    fn attribution_routes_events_to_program_slots() {
        let mut r = MetricsRecorder::new();
        assert!(!r.is_attributing());
        r.enable_attribution();
        assert!(r.is_attributing());

        r.packet_begin(1, 0, 64);
        // Stage 0: the filter lookup fires before the binding action.
        r.table_lookup(Gress::Ingress, 0, true);
        r.prog_ctx(2);
        r.table_lookup(Gress::Ingress, 1, true);
        r.salu_rmw(Gress::Ingress, 1, true);
        r.tm_decision(Verdict::Forward(3), false);
        r.packet_end(1, 1, false);

        r.packet_begin(2, 0, 64);
        r.table_lookup(Gress::Ingress, 0, false);
        r.tm_decision(Verdict::Drop, false);
        r.packet_end(2, 1, true);

        let pp = r.per_prog.as_ref().unwrap();
        assert_eq!(pp.len(), 3);
        // Slot 0: the pre-binding filter lookups plus the unmatched packet.
        assert_eq!(pp[0].ingress.total().hits.get(), 1);
        assert_eq!(pp[0].ingress.total().misses.get(), 1);
        assert_eq!(pp[0].drops.get(), 1);
        assert_eq!(pp[0].packets.get(), 1);
        // Slot 2: everything after the binding.
        assert_eq!(pp[2].ingress.total().hits.get(), 1);
        assert_eq!(pp[2].salu_rmws(), 1);
        assert_eq!(pp[2].forwarded.get(), 1);
        assert_eq!(pp[2].packets.get(), 1);

        // The per-program slots decompose the global counters exactly.
        let hits: u64 = pp.iter().map(|p| p.hits()).sum();
        assert_eq!(hits, r.ingress.total().hits.get() + r.egress.total().hits.get());
        let drops: u64 = pp.iter().map(|p| p.drops.get()).sum();
        assert_eq!(drops, r.tm.dropped.get());

        // Round-trips with attribution slots attached.
        let back: MetricsRecorder =
            serde::json::from_str(&serde::json::to_string(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn merge_unions_attribution_and_stays_commutative() {
        let mut a = MetricsRecorder::new();
        a.enable_attribution();
        a.prog_ctx(1);
        a.table_lookup(Gress::Ingress, 1, true);
        a.tm_decision(Verdict::Forward(1), false);
        // b never attributed (e.g. a worker forked before the feature
        // was on, or a zero-packet worker).
        let mut b = MetricsRecorder::new();
        b.table_lookup(Gress::Ingress, 1, false);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "attribution merge is commutative");
        assert!(ab.is_attributing());
        let pp = ab.per_prog.as_ref().unwrap();
        assert_eq!(pp[1].forwarded.get(), 1);
        // The unattributed side's lookup stays global-only: slots sum to
        // the *attributed* portion, globals carry everything.
        assert_eq!(ab.ingress.total().misses.get(), 1);
        assert_eq!(pp.iter().map(|p| p.hits()).sum::<u64>(), 1);
    }

    #[test]
    fn nop_recorder_stores_nothing() {
        // Compile-time check that every hook has a default body; the
        // NopRecorder must accept the full event stream.
        let mut n = NopRecorder;
        n.table_lookup(Gress::Ingress, 0, true);
        n.action_executed(Gress::Egress, 1);
        n.salu_rmw(Gress::Ingress, 3, false);
        n.parser_path(7);
        n.tm_decision(Verdict::Return, true);
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = MetricsRecorder::new();
        r.epoch = 9;
        r.table_lookup(Gress::Ingress, 1, true);
        r.parser_path(0x00ff);
        r.tm_decision(Verdict::Multicast(3), false);
        let text = serde::json::to_string_pretty(&r);
        let back: MetricsRecorder = serde::json::from_str(&text).unwrap();
        assert_eq!(back, r);

        let mut h = Histogram::exponential(25_000, 2, 8);
        h.observe(330_000);
        h.observe(25_000);
        let text = serde::json::to_string(&h);
        let back: Histogram = serde::json::from_str(&text).unwrap();
        assert_eq!(back, h);
    }
}
