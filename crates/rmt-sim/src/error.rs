//! Simulator error types.

use core::fmt;

/// Errors raised by the RMT simulator.
///
/// Split by provenance: configuration-time errors (provisioning a pipeline
/// that does not fit the chip) versus runtime errors (control operations
/// against missing objects, out-of-range memory access).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A named field was not registered in the field table.
    UnknownField(String),
    /// A field id is out of range for the PHV.
    BadFieldId(u16),
    /// A table id does not exist.
    NoSuchTable(String),
    /// An entry handle does not exist (already deleted, or never inserted).
    NoSuchEntry(u64),
    /// The table reached its configured size limit.
    /// TableFull.
    TableFull { table: String, capacity: usize },
    /// An entry's match spec does not line up with the table's key spec.
    /// KeyMismatch.
    KeyMismatch { table: String, expected: usize, got: usize },
    /// An entry references an action id the table does not define.
    /// NoSuchAction.
    NoSuchAction { table: String, action: usize },
    /// A register array id does not exist.
    NoSuchRegArray(String),
    /// A stateful-memory access fell outside the array.
    /// AddrOutOfRange.
    AddrOutOfRange { array: String, addr: u32, size: u32 },
    /// A per-stage hardware resource was exceeded at provisioning time.
    /// ResourceExceeded.
    ResourceExceeded { stage: usize, resource: &'static str, used: usize, limit: usize },
    /// The parser rejected the packet (no accepting path).
    ParserReject,
    /// The packet exceeded the maximum recirculation iterations configured
    /// on the switch — the hardware drops such packets.
    /// RecircLimit.
    RecircLimit { limit: u8 },
    /// A port number outside the switch's port range.
    NoSuchPort(u16),
    /// Anything that indicates the simulator itself was misconfigured.
    Config(String),
    /// An injected fault failed this operation (the op was not applied;
    /// the batch's earlier ops stay on the device — fail-stop).
    /// FaultInjected.
    FaultInjected { at_op: u64 },
    /// The whole batch timed out before anything was applied. Retryable.
    ChannelTimeout,
    /// The control channel is down; nothing was applied. The channel
    /// stays down until `reconnect()`.
    ChannelDown,
    /// The device reset mid-batch: all tables wiped, registers zeroed,
    /// generation bumped. `generation` is the post-reset value.
    /// DeviceReset.
    DeviceReset { generation: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownField(name) => write!(f, "unknown PHV field `{name}`"),
            SimError::BadFieldId(id) => write!(f, "field id {id} out of range"),
            SimError::NoSuchTable(name) => write!(f, "no such table `{name}`"),
            SimError::NoSuchEntry(h) => write!(f, "no such entry handle {h}"),
            SimError::TableFull { table, capacity } => {
                write!(f, "table `{table}` is full ({capacity} entries)")
            }
            SimError::KeyMismatch { table, expected, got } => {
                write!(f, "table `{table}` expects {expected} key fields, entry has {got}")
            }
            SimError::NoSuchAction { table, action } => {
                write!(f, "table `{table}` has no action id {action}")
            }
            SimError::NoSuchRegArray(name) => write!(f, "no such register array `{name}`"),
            SimError::AddrOutOfRange { array, addr, size } => {
                write!(f, "address {addr} out of range for array `{array}` (size {size})")
            }
            SimError::ResourceExceeded { stage, resource, used, limit } => {
                write!(f, "stage {stage}: {resource} exceeded ({used} > {limit})")
            }
            SimError::ParserReject => write!(f, "parser rejected packet"),
            SimError::RecircLimit { limit } => {
                write!(f, "packet exceeded recirculation limit {limit}")
            }
            SimError::NoSuchPort(p) => write!(f, "no such port {p}"),
            SimError::Config(msg) => write!(f, "configuration error: {msg}"),
            SimError::FaultInjected { at_op } => {
                write!(f, "injected fault failed control op {at_op}")
            }
            SimError::ChannelTimeout => write!(f, "control batch timed out"),
            SimError::ChannelDown => write!(f, "control channel is down"),
            SimError::DeviceReset { generation } => {
                write!(f, "device reset mid-batch (now generation {generation})")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// SimResult.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = SimError::TableFull { table: "rpb_3".into(), capacity: 2048 };
        assert!(e.to_string().contains("rpb_3"));
        assert!(e.to_string().contains("2048"));
        let e = SimError::AddrOutOfRange { array: "mem_9".into(), addr: 70000, size: 65536 };
        assert!(e.to_string().contains("70000"));
    }
}
