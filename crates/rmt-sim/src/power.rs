//! Latency and power estimation — the Table 2 quantities.
//!
//! The paper reads pipeline latency (clock cycles), worst-case power, and
//! the resulting traffic-limit load off P4C / P4 Insight. Here both are
//! linear models over the provisioned resource usage, calibrated so that a
//! fully-populated 12-stage gress lands in the regime Table 2 reports
//! (~300 cycles per gress, ~40 W total). The models are deliberately
//! simple: the paper's claims are *relative* (P4runpro vs ActiveRMT vs
//! FlyMon), and relative ordering is determined by the resource profiles,
//! which the simulator computes from real configuration.

use crate::resources::ChipReport;

/// Coefficients of the latency/power model.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// Fixed cycles through an empty ingress gress (parser handoff etc.).
    pub ingress_base_cycles: u32,
    /// Fixed cycles through an empty egress gress (incl. deparser).
    pub egress_base_cycles: u32,
    /// Cycles added per active (table-bearing) stage.
    pub cycles_per_stage: u32,
    /// Watts per TCAM block (ternary search is the dominant dynamic load).
    pub watts_per_tcam_block: f64,
    /// Watts per SRAM block.
    pub watts_per_sram_block: f64,
    /// Watts per VLIW slot.
    pub watts_per_vliw_slot: f64,
    /// Watts per SALU.
    pub watts_per_salu: f64,
    /// Watts per hash output bit.
    pub watts_per_hash_bit: f64,
    /// Static baseline per gress.
    pub base_watts: f64,
    /// The hardware power budget; exceeding it makes the chip clamp its
    /// forwarding rate (the "traffic limit load" row of Table 2).
    pub budget_watts: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            ingress_base_cycles: 6,
            egress_base_cycles: 16,
            cycles_per_stage: 25,
            watts_per_tcam_block: 0.0325,
            watts_per_sram_block: 0.015,
            watts_per_vliw_slot: 0.0015,
            watts_per_salu: 0.30,
            watts_per_hash_bit: 0.01,
            base_watts: 0.5,
            budget_watts: 40.0,
        }
    }
}

/// The estimate, shaped like Table 2's row format
/// (ingress / egress / total).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Ingress cycles.
    pub ingress_cycles: u32,
    /// Egress cycles.
    pub egress_cycles: u32,
    /// Total cycles.
    pub total_cycles: u32,
    /// Ingress watts.
    pub ingress_watts: f64,
    /// Egress watts.
    pub egress_watts: f64,
    /// Total watts.
    pub total_watts: f64,
    /// Fraction of line rate the chip sustains under the power budget
    /// (1.0 = full rate).
    pub traffic_limit_load: f64,
}

impl PowerModel {
    /// Estimate latency and power from a chip report.
    ///
    /// Power is split between gresses proportionally to their active
    /// stages; the report's totals cover both.
    pub fn estimate(&self, report: &ChipReport) -> PowerEstimate {
        let ingress_cycles =
            self.ingress_base_cycles + self.cycles_per_stage * report.active_ingress_stages as u32;
        let egress_cycles =
            self.egress_base_cycles + self.cycles_per_stage * report.active_egress_stages as u32;

        // Per-gress split of the dynamic power.
        let mut ingress_watts = self.base_watts;
        let mut egress_watts = self.base_watts;
        for (name, u) in &report.per_stage {
            let w = self.watts_per_tcam_block * u.tcam_blocks as f64
                + self.watts_per_sram_block * u.sram_blocks as f64
                + self.watts_per_vliw_slot * u.vliw_slots as f64
                + self.watts_per_salu * u.salus as f64
                + self.watts_per_hash_bit * u.hash_bits as f64;
            if name.starts_with("ingress") {
                ingress_watts += w;
            } else {
                egress_watts += w;
            }
        }
        let total = ingress_watts + egress_watts;
        PowerEstimate {
            ingress_cycles,
            egress_cycles,
            total_cycles: ingress_cycles + egress_cycles,
            ingress_watts,
            egress_watts,
            total_watts: total,
            traffic_limit_load: (self.budget_watts / total).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::FieldTable;
    use crate::pipeline::{Gress, Pipeline, StageLimits};
    use crate::resources::ChipReport;
    use crate::table::{KeySpec, MatchKind};
    use crate::table::Table;
    use crate::action::ActionDef;

    fn report_with_stages(active_ig: usize, active_eg: usize) -> ChipReport {
        let mut ft = FieldTable::new();
        let f = ft.register("k", 32).unwrap();
        let mut ig = Pipeline::new(Gress::Ingress, 12, StageLimits::default());
        let mut eg = Pipeline::new(Gress::Egress, 12, StageLimits::default());
        for i in 0..active_ig {
            ig.stage_mut(i).unwrap().add_table(Table::new(
                format!("ti{i}"),
                KeySpec::new(vec![(f, MatchKind::Ternary)]),
                vec![ActionDef::noop("n")],
                2048,
            ));
        }
        for i in 0..active_eg {
            eg.stage_mut(i).unwrap().add_table(Table::new(
                format!("te{i}"),
                KeySpec::new(vec![(f, MatchKind::Ternary)]),
                vec![ActionDef::noop("n")],
                2048,
            ));
        }
        ChipReport::build(&ft, &ig, &eg)
    }

    #[test]
    fn latency_scales_with_active_stages() {
        let m = PowerModel::default();
        let full = m.estimate(&report_with_stages(12, 12));
        assert_eq!(full.ingress_cycles, 306);
        assert_eq!(full.egress_cycles, 316);
        assert_eq!(full.total_cycles, 622);
        let sparse = m.estimate(&report_with_stages(2, 10));
        assert!(sparse.ingress_cycles < full.ingress_cycles);
        assert_eq!(sparse.ingress_cycles, 56);
    }

    #[test]
    fn power_monotone_in_resources() {
        let m = PowerModel::default();
        let small = m.estimate(&report_with_stages(2, 2));
        let big = m.estimate(&report_with_stages(12, 12));
        assert!(big.total_watts > small.total_watts);
        assert!(big.ingress_watts > 0.0 && big.egress_watts > 0.0);
    }

    #[test]
    fn traffic_limit_caps_at_one() {
        let m = PowerModel::default();
        let e = m.estimate(&report_with_stages(1, 1));
        assert_eq!(e.traffic_limit_load, 1.0);
    }

    #[test]
    fn over_budget_limits_load() {
        let m = PowerModel { budget_watts: 1.5, ..Default::default() };
        let e = m.estimate(&report_with_stages(12, 12));
        assert!(e.traffic_limit_load < 1.0);
        assert!((e.traffic_limit_load - 1.5 / e.total_watts).abs() < 1e-12);
    }
}
