//! Stateful ALUs (SALUs) and their register arrays.
//!
//! Each pipeline stage owns register arrays in its SRAM. An action may call
//! at most one SALU, which performs a single read-modify-write on one array
//! bucket per packet — the fundamental RMT constraint that makes cross-stage
//! memory access impossible and drives the paper's allocation constraint (5)
//! and the "memory primitives aligned to the same depth" compiler pass.
//!
//! The instruction model mirrors Tofino's predicated register actions: a
//! condition comparing the bucket with an operand selects between two update
//! expressions, and one output is returned to the PHV. This is exactly the
//! capability the paper exploits ("we utilize the capability of SALU to
//! execute a conditional comparison before memory access", §4.1.2), and is
//! rich enough to express all eight memory primitives of Table 3 plus the
//! sketch/filter logic of the native baseline programs.

use crate::error::{SimError, SimResult};

/// A stateful register array (one logical `Register<bit<32>>` instance).
#[derive(Debug, Clone)]
pub struct RegArray {
    /// Human-readable name.
    pub name: String,
    data: Vec<u32>,
    /// Write epoch counter — bumped on every mutation, lets tests assert
    /// "no stateful writes happened".
    pub write_epoch: u64,
}

impl RegArray {
    /// Construct with defaults appropriate to the type.
    pub fn new(name: impl Into<String>, size: usize) -> RegArray {
        RegArray { name: name.into(), data: vec![0; size], write_epoch: 0 }
    }

    /// Size.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Read.
    pub fn read(&self, addr: u32) -> SimResult<u32> {
        self.data.get(addr as usize).copied().ok_or_else(|| SimError::AddrOutOfRange {
            array: self.name.clone(),
            addr,
            size: self.size(),
        })
    }

    /// Write.
    pub fn write(&mut self, addr: u32, value: u32) -> SimResult<()> {
        let size = self.size();
        match self.data.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                self.write_epoch += 1;
                Ok(())
            }
            None => Err(SimError::AddrOutOfRange { array: self.name.clone(), addr, size }),
        }
    }

    /// Zero a contiguous range — the control-plane memory reset used during
    /// program termination (Figure 6, step 4).
    pub fn reset_range(&mut self, start: u32, len: u32) -> SimResult<()> {
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.size())
            .ok_or_else(|| SimError::AddrOutOfRange { array: self.name.clone(), addr: start.saturating_add(len), size: self.size() })?;
        for slot in &mut self.data[start as usize..end as usize] {
            *slot = 0;
        }
        self.write_epoch += 1;
        Ok(())
    }

    /// Snapshot a range (control-plane monitoring path).
    pub fn read_range(&self, start: u32, len: u32) -> SimResult<Vec<u32>> {
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.size())
            .ok_or_else(|| SimError::AddrOutOfRange { array: self.name.clone(), addr: start.saturating_add(len), size: self.size() })?;
        Ok(self.data[start as usize..end as usize].to_vec())
    }
}

/// The SALU predicate, comparing the memory bucket with the operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaluCond {
    /// Always.
    Always,
    /// operand > mem
    OpGtMem,
    /// operand >= mem
    OpGeMem,
    /// operand < mem
    OpLtMem,
    /// operand <= mem
    OpLeMem,
    /// operand == mem
    OpEqMem,
    /// mem == 0
    MemIsZero,
}

impl SaluCond {
    /// Eval.
    pub fn eval(self, mem: u32, op: u32) -> bool {
        match self {
            SaluCond::Always => true,
            SaluCond::OpGtMem => op > mem,
            SaluCond::OpGeMem => op >= mem,
            SaluCond::OpLtMem => op < mem,
            SaluCond::OpLeMem => op <= mem,
            SaluCond::OpEqMem => op == mem,
            SaluCond::MemIsZero => mem == 0,
        }
    }
}

/// Update expressions available to the SALU data path (wrapping 32-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaluExpr {
    /// Mem.
    Mem,
    /// Op.
    Op,
    /// Zero.
    Zero,
    /// Const.
    Const(u32),
    /// MemPlusOp.
    MemPlusOp,
    /// MemMinusOp.
    MemMinusOp,
    /// MemAndOp.
    MemAndOp,
    /// MemOrOp.
    MemOrOp,
    /// MemXorOp.
    MemXorOp,
    /// MaxMemOp.
    MaxMemOp,
    /// MinMemOp.
    MinMemOp,
    /// MemPlusConst.
    MemPlusConst(u32),
}

impl SaluExpr {
    /// Eval.
    pub fn eval(self, mem: u32, op: u32) -> u32 {
        match self {
            SaluExpr::Mem => mem,
            SaluExpr::Op => op,
            SaluExpr::Zero => 0,
            SaluExpr::Const(c) => c,
            SaluExpr::MemPlusOp => mem.wrapping_add(op),
            SaluExpr::MemMinusOp => mem.wrapping_sub(op),
            SaluExpr::MemAndOp => mem & op,
            SaluExpr::MemOrOp => mem | op,
            SaluExpr::MemXorOp => mem ^ op,
            SaluExpr::MaxMemOp => mem.max(op),
            SaluExpr::MinMemOp => mem.min(op),
            SaluExpr::MemPlusConst(c) => mem.wrapping_add(c),
        }
    }
}

/// What the SALU returns to the PHV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaluOutput {
    /// No output (the destination field keeps its value).
    None,
    /// The bucket value before the update.
    OldMem,
    /// The bucket value after the update.
    NewMem,
    /// The operand, passed through.
    Op,
    /// 1 if the condition held, else 0.
    CondResult,
}

/// A complete SALU instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaluInstr {
    /// Cond.
    pub cond: SaluCond,
    /// Applied when the condition holds; `None` leaves memory unchanged.
    pub update_true: Option<SaluExpr>,
    /// Applied when the condition fails.
    pub update_false: Option<SaluExpr>,
    /// Output.
    pub output: SaluOutput,
}

impl SaluInstr {
    /// Unconditional read (MEMREAD).
    pub const READ: SaluInstr = SaluInstr {
        cond: SaluCond::Always,
        update_true: None,
        update_false: None,
        output: SaluOutput::OldMem,
    };

    /// Unconditional write (MEMWRITE).
    pub const WRITE: SaluInstr = SaluInstr {
        cond: SaluCond::Always,
        update_true: Some(SaluExpr::Op),
        update_false: None,
        output: SaluOutput::None,
    };

    /// Execute against a bucket: returns `(new_mem, output)`.
    pub fn execute(&self, mem: u32, op: u32) -> (u32, Option<u32>) {
        let taken = self.cond.eval(mem, op);
        let update = if taken { self.update_true } else { self.update_false };
        let new_mem = update.map(|e| e.eval(mem, op)).unwrap_or(mem);
        let out = match self.output {
            SaluOutput::None => None,
            SaluOutput::OldMem => Some(mem),
            SaluOutput::NewMem => Some(new_mem),
            SaluOutput::Op => Some(op),
            SaluOutput::CondResult => Some(u32::from(taken)),
        };
        (new_mem, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut a = RegArray::new("r", 16);
        a.write(3, 77).unwrap();
        assert_eq!(a.read(3).unwrap(), 77);
        assert_eq!(a.read(4).unwrap(), 0);
        assert!(a.read(16).is_err());
        assert!(a.write(16, 0).is_err());
    }

    #[test]
    fn reset_range_zeroes_exactly() {
        let mut a = RegArray::new("r", 8);
        for i in 0..8 {
            a.write(i, 100 + i).unwrap();
        }
        a.reset_range(2, 3).unwrap();
        assert_eq!(a.read_range(0, 8).unwrap(), vec![100, 101, 0, 0, 0, 105, 106, 107]);
        assert!(a.reset_range(6, 3).is_err());
        assert!(a.reset_range(u32::MAX, 2).is_err());
    }

    #[test]
    fn write_epoch_tracks_mutations() {
        let mut a = RegArray::new("r", 4);
        let e0 = a.write_epoch;
        a.read(0).unwrap();
        assert_eq!(a.write_epoch, e0);
        a.write(0, 1).unwrap();
        assert_eq!(a.write_epoch, e0 + 1);
    }

    #[test]
    fn memadd_semantics() {
        // MEMADD: mem += op; sar = new mem.
        let instr = SaluInstr {
            cond: SaluCond::Always,
            update_true: Some(SaluExpr::MemPlusOp),
            update_false: None,
            output: SaluOutput::NewMem,
        };
        let (m, out) = instr.execute(10, 5);
        assert_eq!((m, out), (15, Some(15)));
        // Wrapping.
        let (m, _) = instr.execute(u32::MAX, 1);
        assert_eq!(m, 0);
    }

    #[test]
    fn memor_returns_old_value() {
        // MEMOR: sar = old mem; mem |= op — the existence-check idiom in
        // the heavy-hitter Bloom filter (Figure 17).
        let instr = SaluInstr {
            cond: SaluCond::Always,
            update_true: Some(SaluExpr::MemOrOp),
            update_false: None,
            output: SaluOutput::OldMem,
        };
        let (m, out) = instr.execute(0, 1);
        assert_eq!((m, out), (1, Some(0)));
        let (m, out) = instr.execute(1, 1);
        assert_eq!((m, out), (1, Some(1)));
    }

    #[test]
    fn memmax_conditional_write() {
        // MEMMAX: mem = op if op > mem.
        let instr = SaluInstr {
            cond: SaluCond::OpGtMem,
            update_true: Some(SaluExpr::Op),
            update_false: None,
            output: SaluOutput::None,
        };
        assert_eq!(instr.execute(10, 5), (10, None));
        assert_eq!(instr.execute(10, 50), (50, None));
    }

    #[test]
    fn cond_result_output() {
        let instr = SaluInstr {
            cond: SaluCond::MemIsZero,
            update_true: Some(SaluExpr::Const(1)),
            update_false: None,
            output: SaluOutput::CondResult,
        };
        assert_eq!(instr.execute(0, 0), (1, Some(1)));
        assert_eq!(instr.execute(7, 0), (7, Some(0)));
    }

    #[test]
    fn all_conds_cover_boundaries() {
        assert!(SaluCond::OpGeMem.eval(5, 5));
        assert!(!SaluCond::OpGtMem.eval(5, 5));
        assert!(SaluCond::OpLeMem.eval(5, 5));
        assert!(!SaluCond::OpLtMem.eval(5, 5));
        assert!(SaluCond::OpEqMem.eval(5, 5));
    }
}
