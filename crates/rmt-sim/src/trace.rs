//! Flight recorder: a causally ordered trace of per-packet journeys
//! interleaved with control-plane events.
//!
//! The telemetry subsystem (PR 1, [`crate::telemetry`]) answers "how much"
//! — aggregate counters cut at epoch boundaries. This module answers
//! "in what order": every hook point the [`crate::telemetry::Recorder`]
//! already sees, plus per-packet context (a packet id threaded through the
//! parser, stages, SALUs, traffic manager, and recirculation passes) and
//! control-channel events (batch begin/end, per-entry insert/delete,
//! epoch bumps, program lifecycle spans), lands in **one** stream ordered
//! by a global monotonic sequence number and stamped with the simulated
//! clock. That stream is the inspectable form of the paper's central
//! claim: programs are linked onto a *running* pipeline without any packet
//! ever observing a half-installed state (§4.3, Figure 6).
//!
//! Design constraints, in order:
//!
//! * **Disabled tracing costs nothing.** The data path reports through the
//!   same `&mut dyn Recorder` it already uses; with tracing off that is
//!   the shared no-op recorder — one virtual call to an empty body, the
//!   budget PR 2's fast path was measured under.
//! * **Steady state allocates nothing.** [`TraceBuffer`] is a ring of
//!   preallocated fixed-size [`TraceEvent`] slots (`Copy`, no heap
//!   payloads). Wraparound overwrites the oldest slot and counts it in
//!   [`TraceBuffer::dropped_events`], so drop accounting is exact and the
//!   sequence numbers of retained events stay contiguous.
//! * **Violations are caught live.** An [`InvariantChecker`] observes
//!   every event as it is recorded and promotes the offline assertions of
//!   `tests/consistency.rs` — no packet interleaves with a control batch's
//!   entry writes, entry writes never split an epoch — into online checks.
//!   A firing checker triggers a post-mortem dump of the last ring
//!   contents to a `postmortem-*.txt` artifact.
//!
//! On top of the stream sit three consumers: the Chrome trace-event JSON
//! exporter ([`chrome_trace`], viewable in Perfetto with control ops and
//! packet journeys on separate tracks), the human-readable packet-journey
//! reconstruction ([`journey`]), and the event filter ([`TraceFilter`])
//! behind `p4rp-ctl`'s `trace dump` subcommand. `docs/TRACING.md` has the
//! schema and a Perfetto how-to.

use std::collections::BTreeMap;

use crate::clock::Nanos;
use crate::pipeline::Gress;
use crate::switch::{ControlOp, OpResult};
use crate::tm::Verdict;

/// Default ring capacity: enough for the experiment-scale deploy → replay
/// → revoke scenarios to complete with zero drops (~40 events per packet
/// through the provisioned P4runpro pipeline).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

/// How many trailing events a post-mortem dump renders by default.
pub const DEFAULT_POSTMORTEM_LAST: usize = 256;

/// What happened, without its stamp. Every variant is `Copy` and carries
/// no heap payload, so a ring slot is one fixed-size write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// A frame entered the switch on an external port.
    PacketStart {
        /// Packet id (switch-global, monotonic).
        packet: u64,
        /// Ingress port.
        port: u16,
        /// Frame length in bytes.
        len: u32,
    },
    /// The packet's five-tuple, when the frame parses as IPv4 + TCP/UDP —
    /// the key the `trace dump flow …` filter selects on.
    PacketFlow {
        /// Packet id.
        packet: u64,
        /// IPv4 source address (big-endian u32).
        src: u32,
        /// IPv4 destination address (big-endian u32).
        dst: u32,
        /// Source port.
        sport: u16,
        /// Destination port.
        dport: u16,
        /// IP protocol number.
        proto: u8,
    },
    /// A pipeline pass began (pass 1 = original injection, ≥2 =
    /// recirculation).
    PassBegin {
        /// Packet id.
        packet: u64,
        /// Pass number, 1-based.
        pass: u8,
    },
    /// The parser accepted the packet along the path named by `bitmap`.
    ParserPath {
        /// Packet id.
        packet: u64,
        /// Pass number.
        pass: u8,
        /// Parse-path bitmap.
        bitmap: u16,
    },
    /// One table lookup finished.
    TableLookup {
        /// Packet id.
        packet: u64,
        /// Gress.
        gress: Gress,
        /// Physical stage.
        stage: u16,
        /// Installed-entry match (default actions count as misses).
        hit: bool,
    },
    /// One action body executed.
    ActionExecuted {
        /// Packet id.
        packet: u64,
        /// Gress.
        gress: Gress,
        /// Physical stage.
        stage: u16,
    },
    /// One SALU read-modify-write.
    SaluRmw {
        /// Packet id.
        packet: u64,
        /// Gress.
        gress: Gress,
        /// Physical stage.
        stage: u16,
        /// The cycle committed a memory write.
        wrote: bool,
    },
    /// The traffic manager resolved this pass's verdict.
    TmVerdict {
        /// Packet id.
        packet: u64,
        /// Pass number.
        pass: u8,
        /// Verdict.
        verdict: Verdict,
        /// A `REPORT` copy rides along.
        report: bool,
    },
    /// The packet left the switch (emitted or dropped).
    PacketEnd {
        /// Packet id.
        packet: u64,
        /// Pipeline passes consumed.
        passes: u8,
        /// The packet was dropped.
        dropped: bool,
    },
    /// A control-channel batch opened.
    BatchBegin {
        /// Batch id (channel-global, monotonic).
        batch: u64,
        /// Operations in the batch.
        ops: u32,
    },
    /// A control-channel batch closed.
    BatchEnd {
        /// Batch id.
        batch: u64,
        /// Operations applied (smaller than announced on fail-stop).
        ops: u32,
        /// Modeled batch latency, nanoseconds.
        cost_ns: u64,
    },
    /// One table entry was inserted.
    EntryInsert {
        /// Gress.
        gress: Gress,
        /// Stage.
        stage: u16,
        /// Table within the stage.
        table: u16,
        /// The handle the switch allocated.
        handle: u64,
    },
    /// One table entry was deleted.
    EntryDelete {
        /// Gress.
        gress: Gress,
        /// Stage.
        stage: u16,
        /// Table within the stage.
        table: u16,
        /// The deleted handle.
        handle: u64,
    },
    /// One register bucket was written (or a range reset).
    RegWrite {
        /// Gress.
        gress: Gress,
        /// Stage.
        stage: u16,
        /// Array within the stage.
        array: u16,
        /// Bucket address (range resets record the start).
        addr: u32,
    },
    /// The control plane opened a new telemetry epoch.
    EpochBump {
        /// The epoch now active.
        epoch: u64,
    },
    /// A program lifecycle event completed (the control-track span of a
    /// `p4rp-ctl` deploy or revoke).
    Lifecycle {
        /// Deploy or revoke.
        kind: LifecycleKind,
        /// Program id.
        prog_id: u16,
        /// Epoch the event opened.
        epoch: u64,
        /// Simulated update delay, nanoseconds.
        dur_ns: u64,
    },
    /// The fault plan fired a trigger on the control channel.
    FaultInjected {
        /// Which fault.
        fault: crate::fault::FaultKind,
        /// Global control-op index the trigger fired at.
        at_op: u64,
    },
    /// The controller started rolling back a partially applied plan.
    RollbackBegin {
        /// Program id being undone.
        prog_id: u16,
    },
    /// The rollback finished (fully, or stopped short by a double fault).
    RollbackEnd {
        /// Program id.
        prog_id: u16,
        /// Undo operations applied.
        ops: u32,
        /// Every applied op was undone; `false` means the program wedged.
        complete: bool,
    },
    /// The controller started auditing device state against its own view.
    ReconcileBegin {
        /// Device generation at audit time.
        generation: u64,
    },
    /// The reconciliation pass finished.
    ReconcileEnd {
        /// Entries re-installed on the device.
        reinstalled: u32,
        /// Divergent entries garbage-collected.
        deleted: u32,
    },
    /// The SLO watchdog observed a threshold crossing (armed thresholds
    /// only; emitted once per non-breach → breach transition, so a
    /// sustained breach is one event, not a flood).
    SloViolation {
        /// Which service-level objective was breached.
        slo: SloKind,
        /// Program the breach is attributed to; 0 = switch-global.
        prog_id: u16,
        /// Observed value in the SLO's integer unit (ppm for rates,
        /// nanoseconds for latencies, a plain count otherwise).
        observed: u64,
        /// The armed threshold in the same unit.
        threshold: u64,
    },
    /// The runtime-control server dequeued a client request for
    /// execution (the `p4rp-ctl::server` service thread picked it up).
    RequestBegin {
        /// Server-assigned client session id.
        client: u32,
        /// Client-chosen request id.
        request: u64,
        /// What the request asked for.
        op: RequestOp,
    },
    /// The server produced the request's response.
    RequestEnd {
        /// Server-assigned client session id.
        client: u32,
        /// Client-chosen request id.
        request: u64,
        /// What the request asked for.
        op: RequestOp,
        /// The request executed without error.
        ok: bool,
        /// Sim-clock time from submission to response, nanoseconds.
        dur_ns: u64,
    },
    /// The server refused a request without executing it (backpressure,
    /// rate limit, queued past its timeout, or drain).
    RequestRejected {
        /// Server-assigned client session id.
        client: u32,
        /// Client-chosen request id (0 when rejected before parsing).
        request: u64,
        /// Why the request was refused.
        reason: RejectReason,
    },
}

/// What a [`TraceEventKind::RequestBegin`] asked the control plane for —
/// the verb set of the `p4rp-ctl::server` line protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOp {
    /// Link a program.
    Deploy,
    /// Unlink a program.
    Revoke,
    /// Telemetry report snapshot.
    Status,
    /// Prometheus exposition snapshot.
    Metrics,
    /// Flight-recorder statistics.
    Trace,
    /// Liveness probe.
    Ping,
    /// Graceful drain.
    Shutdown,
}

impl RequestOp {
    /// Short stable name (dump rows, Chrome trace `name`, protocol verb).
    pub fn name(self) -> &'static str {
        match self {
            RequestOp::Deploy => "deploy",
            RequestOp::Revoke => "revoke",
            RequestOp::Status => "status",
            RequestOp::Metrics => "metrics",
            RequestOp::Trace => "trace",
            RequestOp::Ping => "ping",
            RequestOp::Shutdown => "shutdown",
        }
    }
}

/// Why a [`TraceEventKind::RequestRejected`] refused its request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The client's bounded in-flight queue was full (backpressure).
    Busy,
    /// The client's token bucket was empty (rate limit).
    RateLimited,
    /// The request sat queued past its timeout before execution.
    Timeout,
    /// The server is draining; new work is refused.
    Draining,
    /// The request line failed to parse (malformed JSON, unknown op,
    /// bad field types).
    Parse,
}

impl RejectReason {
    /// Short stable name (dump rows, protocol `error` field).
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::Busy => "busy",
            RejectReason::RateLimited => "rate_limited",
            RejectReason::Timeout => "timeout",
            RejectReason::Draining => "draining",
            RejectReason::Parse => "parse",
        }
    }
}

/// Which service-level objective a [`TraceEventKind::SloViolation`]
/// records. Units are integers so watchdog evaluation — and therefore
/// the trace fingerprint — is bit-for-bit deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// TM drop rate over all processed passes, parts-per-million.
    DropRate,
    /// Cumulative fault-aborted deploys (a plain count).
    DeployFailure,
    /// p99 of the control-channel write latency, nanoseconds.
    P99Latency,
}

impl SloKind {
    /// Short stable name (render rows, Prometheus labels).
    pub fn name(self) -> &'static str {
        match self {
            SloKind::DropRate => "drop_rate",
            SloKind::DeployFailure => "deploy_failure",
            SloKind::P99Latency => "p99_latency",
        }
    }
}

/// Which lifecycle event a [`TraceEventKind::Lifecycle`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleKind {
    /// Program deployed.
    Deploy,
    /// Program revoked.
    Revoke,
}

impl core::fmt::Display for LifecycleKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LifecycleKind::Deploy => write!(f, "deploy"),
            LifecycleKind::Revoke => write!(f, "revoke"),
        }
    }
}

impl TraceEventKind {
    /// The packet id this event belongs to, `None` for control-side events.
    pub fn packet(&self) -> Option<u64> {
        match *self {
            TraceEventKind::PacketStart { packet, .. }
            | TraceEventKind::PacketFlow { packet, .. }
            | TraceEventKind::PassBegin { packet, .. }
            | TraceEventKind::ParserPath { packet, .. }
            | TraceEventKind::TableLookup { packet, .. }
            | TraceEventKind::ActionExecuted { packet, .. }
            | TraceEventKind::SaluRmw { packet, .. }
            | TraceEventKind::TmVerdict { packet, .. }
            | TraceEventKind::PacketEnd { packet, .. } => Some(packet),
            _ => None,
        }
    }

    /// Short event-type name (Chrome trace `name`, dump rows).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::PacketStart { .. } => "packet_start",
            TraceEventKind::PacketFlow { .. } => "packet_flow",
            TraceEventKind::PassBegin { .. } => "pass_begin",
            TraceEventKind::ParserPath { .. } => "parser_path",
            TraceEventKind::TableLookup { .. } => "table_lookup",
            TraceEventKind::ActionExecuted { .. } => "action",
            TraceEventKind::SaluRmw { .. } => "salu_rmw",
            TraceEventKind::TmVerdict { .. } => "tm_verdict",
            TraceEventKind::PacketEnd { .. } => "packet_end",
            TraceEventKind::BatchBegin { .. } => "batch_begin",
            TraceEventKind::BatchEnd { .. } => "batch_end",
            TraceEventKind::EntryInsert { .. } => "entry_insert",
            TraceEventKind::EntryDelete { .. } => "entry_delete",
            TraceEventKind::RegWrite { .. } => "reg_write",
            TraceEventKind::EpochBump { .. } => "epoch_bump",
            TraceEventKind::Lifecycle { .. } => "lifecycle",
            TraceEventKind::FaultInjected { .. } => "fault_injected",
            TraceEventKind::RollbackBegin { .. } => "rollback_begin",
            TraceEventKind::RollbackEnd { .. } => "rollback_end",
            TraceEventKind::ReconcileBegin { .. } => "reconcile_begin",
            TraceEventKind::ReconcileEnd { .. } => "reconcile_end",
            TraceEventKind::SloViolation { .. } => "slo_violation",
            TraceEventKind::RequestBegin { .. } => "request_begin",
            TraceEventKind::RequestEnd { .. } => "request_end",
            TraceEventKind::RequestRejected { .. } => "request_rejected",
        }
    }
}

/// One stamped slot of the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Global monotonic sequence number — the causal order.
    pub seq: u64,
    /// Simulated clock at record time, nanoseconds.
    pub t_ns: u64,
    /// Telemetry epoch active at record time.
    pub epoch: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// One human-readable dump row.
    pub fn render(&self) -> String {
        let head = format!("#{:<8} {:>12}ns e{:<3}", self.seq, self.t_ns, self.epoch);
        let body = match self.kind {
            TraceEventKind::PacketStart { packet, port, len } => {
                format!("pkt {packet:<6} start      port {port}, {len} B")
            }
            TraceEventKind::PacketFlow { packet, src, dst, sport, dport, proto } => format!(
                "pkt {packet:<6} flow       {}.{}.{}.{}:{sport} > {}.{}.{}.{}:{dport}/{proto}",
                src >> 24,
                (src >> 16) & 0xff,
                (src >> 8) & 0xff,
                src & 0xff,
                dst >> 24,
                (dst >> 16) & 0xff,
                (dst >> 8) & 0xff,
                dst & 0xff
            ),
            TraceEventKind::PassBegin { packet, pass } => {
                format!("pkt {packet:<6} pass {pass}")
            }
            TraceEventKind::ParserPath { packet, pass, bitmap } => {
                format!("pkt {packet:<6} parse      pass {pass} path {bitmap:#06x}")
            }
            TraceEventKind::TableLookup { packet, gress, stage, hit } => format!(
                "pkt {packet:<6} lookup     {gress} stage {stage} {}",
                if hit { "hit" } else { "miss" }
            ),
            TraceEventKind::ActionExecuted { packet, gress, stage } => {
                format!("pkt {packet:<6} action     {gress} stage {stage}")
            }
            TraceEventKind::SaluRmw { packet, gress, stage, wrote } => format!(
                "pkt {packet:<6} salu       {gress} stage {stage} {}",
                if wrote { "write" } else { "read" }
            ),
            TraceEventKind::TmVerdict { packet, pass, verdict, report } => format!(
                "pkt {packet:<6} verdict    pass {pass} {verdict:?}{}",
                if report { " +report" } else { "" }
            ),
            TraceEventKind::PacketEnd { packet, passes, dropped } => format!(
                "pkt {packet:<6} end        {passes} pass(es), {}",
                if dropped { "dropped" } else { "emitted" }
            ),
            TraceEventKind::BatchBegin { batch, ops } => {
                format!("ctl batch {batch} begin ({ops} ops)")
            }
            TraceEventKind::BatchEnd { batch, ops, cost_ns } => {
                format!("ctl batch {batch} end   ({ops} ops, {cost_ns} ns)")
            }
            TraceEventKind::EntryInsert { gress, stage, table, handle } => {
                format!("ctl insert {gress} stage {stage} table {table} handle {handle}")
            }
            TraceEventKind::EntryDelete { gress, stage, table, handle } => {
                format!("ctl delete {gress} stage {stage} table {table} handle {handle}")
            }
            TraceEventKind::RegWrite { gress, stage, array, addr } => {
                format!("ctl regwrite {gress} stage {stage} array {array} addr {addr}")
            }
            TraceEventKind::EpochBump { epoch } => format!("ctl epoch → {epoch}"),
            TraceEventKind::Lifecycle { kind, prog_id, epoch, dur_ns } => {
                format!("ctl {kind} prog {prog_id} (epoch {epoch}, {dur_ns} ns)")
            }
            TraceEventKind::FaultInjected { fault, at_op } => {
                format!("ctl fault {} at op {at_op}", fault.name())
            }
            TraceEventKind::RollbackBegin { prog_id } => {
                format!("ctl rollback prog {prog_id} begin")
            }
            TraceEventKind::RollbackEnd { prog_id, ops, complete } => format!(
                "ctl rollback prog {prog_id} end   ({ops} ops, {})",
                if complete { "complete" } else { "wedged" }
            ),
            TraceEventKind::ReconcileBegin { generation } => {
                format!("ctl reconcile begin (device gen {generation})")
            }
            TraceEventKind::ReconcileEnd { reinstalled, deleted } => {
                format!("ctl reconcile end   (+{reinstalled} reinstalled, -{deleted} gc'd)")
            }
            TraceEventKind::SloViolation { slo, prog_id, observed, threshold } => format!(
                "ctl slo {} prog {prog_id} ({observed} > {threshold})",
                slo.name()
            ),
            TraceEventKind::RequestBegin { client, request, op } => {
                format!("srv req c{client}#{request} {} begin", op.name())
            }
            TraceEventKind::RequestEnd { client, request, op, ok, dur_ns } => format!(
                "srv req c{client}#{request} {} end   ({}, {dur_ns} ns)",
                op.name(),
                if ok { "ok" } else { "err" }
            ),
            TraceEventKind::RequestRejected { client, request, reason } => {
                format!("srv req c{client}#{request} rejected ({})", reason.name())
            }
        };
        format!("{head}  {body}")
    }
}

/// Flight-recorder statistics, reported by `status --json` so drop
/// accounting is visible without a dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Tracing is currently enabled.
    pub enabled: bool,
    /// Ring capacity in events.
    pub capacity: u64,
    /// Events recorded since enable (including those since overwritten).
    pub recorded: u64,
    /// Events lost to ring wraparound.
    pub dropped: u64,
    /// Events currently retained in the ring.
    pub retained: u64,
    /// Invariant violations observed.
    pub violations: u64,
}

serde::impl_serde_struct!(TraceStats {
    enabled,
    capacity,
    recorded,
    dropped,
    retained,
    violations,
});

impl TraceStats {
    /// The stats of a switch that never had tracing enabled.
    pub fn disabled() -> TraceStats {
        TraceStats {
            enabled: false,
            capacity: 0,
            recorded: 0,
            dropped: 0,
            retained: 0,
            violations: 0,
        }
    }
}

/// Flight-recorder configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring capacity in events (preallocated at enable time).
    pub capacity: usize,
    /// Directory post-mortem dumps are written to; `None` disables the
    /// artifact (violations are still counted and retained).
    pub postmortem_dir: Option<String>,
    /// Trailing events a post-mortem dump renders.
    pub postmortem_last: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: DEFAULT_TRACE_CAPACITY,
            postmortem_dir: Some("results".into()),
            postmortem_last: DEFAULT_POSTMORTEM_LAST,
        }
    }
}

/// One invariant violation the online checker observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Sequence number of the offending event.
    pub seq: u64,
    /// What rule broke.
    pub rule: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "#{}: {} — {}", self.seq, self.rule, self.detail)
    }
}

/// The online invariant checker: the stream-level form of
/// `tests/consistency.rs`.
///
/// Rules:
///
/// 1. **`packet-during-batch`** — no packet-side event may land between a
///    control batch's `BatchBegin` and `BatchEnd`. This is the atomicity
///    substrate of the consistent-update protocol: packets interleave
///    *between* operations of a batch only through the planner's two-batch
///    ordering, never *inside* the channel's critical section.
/// 2. **`epoch-splits-batch`** — an `EpochBump` never lands inside a
///    batch: entry writes of one lifecycle event all see one epoch.
/// 3. **`epoch-regression`** — epochs only move forward.
/// 4. **`seq-regression`** — sequence numbers are strictly increasing
///    (structural; fires only if the ring is corrupted).
#[derive(Debug, Clone, Default)]
pub struct InvariantChecker {
    in_batch: Option<u64>,
    last_epoch: u64,
    last_seq: Option<u64>,
}

impl InvariantChecker {
    /// Fresh checker.
    pub fn new() -> InvariantChecker {
        InvariantChecker::default()
    }

    /// Observe one event; `Some` means the invariant broke at this event.
    pub fn observe(&mut self, ev: &TraceEvent) -> Option<Violation> {
        if let Some(last) = self.last_seq {
            if ev.seq <= last {
                return Some(Violation {
                    seq: ev.seq,
                    rule: "seq-regression",
                    detail: format!("seq {} after {}", ev.seq, last),
                });
            }
        }
        self.last_seq = Some(ev.seq);

        match ev.kind {
            TraceEventKind::BatchBegin { batch, .. } => {
                self.in_batch = Some(batch);
            }
            TraceEventKind::BatchEnd { .. } => {
                self.in_batch = None;
            }
            TraceEventKind::EpochBump { epoch } => {
                if let Some(batch) = self.in_batch {
                    // The bump still happened: keep tracking it so a later
                    // regression is judged against the real watermark.
                    self.last_epoch = self.last_epoch.max(epoch);
                    return Some(Violation {
                        seq: ev.seq,
                        rule: "epoch-splits-batch",
                        detail: format!("epoch bump to {epoch} inside batch {batch}"),
                    });
                }
                if epoch < self.last_epoch {
                    return Some(Violation {
                        seq: ev.seq,
                        rule: "epoch-regression",
                        detail: format!("epoch {epoch} after {}", self.last_epoch),
                    });
                }
                self.last_epoch = epoch;
            }
            _ => {
                if let (Some(batch), Some(packet)) = (self.in_batch, ev.kind.packet()) {
                    return Some(Violation {
                        seq: ev.seq,
                        rule: "packet-during-batch",
                        detail: format!(
                            "packet {packet} event `{}` inside batch {batch}",
                            ev.kind.name()
                        ),
                    });
                }
            }
        }
        None
    }
}

/// The flight recorder: a fixed-capacity ring of [`TraceEvent`] slots with
/// exact drop accounting, the current packet/pass context for the
/// [`crate::telemetry::Recorder`] hooks, and the inline
/// [`InvariantChecker`].
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    slots: Vec<TraceEvent>,
    head: usize,
    next_seq: u64,
    dropped: u64,
    now_ns: u64,
    epoch: u64,
    next_batch: u64,
    cur_packet: u64,
    cur_pass: u8,
    checker: InvariantChecker,
    violations: Vec<Violation>,
    cfg: TraceConfig,
    /// Paths of post-mortem artifacts written so far.
    pub postmortems: Vec<String>,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new(TraceConfig::default())
    }
}

impl TraceBuffer {
    /// Preallocate a ring with the given configuration.
    pub fn new(cfg: TraceConfig) -> TraceBuffer {
        let capacity = cfg.capacity.max(1);
        TraceBuffer {
            slots: Vec::with_capacity(capacity),
            head: 0,
            next_seq: 0,
            dropped: 0,
            now_ns: 0,
            epoch: 0,
            next_batch: 0,
            cur_packet: 0,
            cur_pass: 0,
            checker: InvariantChecker::new(),
            violations: Vec::new(),
            cfg: TraceConfig { capacity, ..cfg },
            postmortems: Vec::new(),
        }
    }

    /// Preallocate a ring of `capacity` events with default post-mortem
    /// settings.
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        TraceBuffer::new(TraceConfig { capacity, ..TraceConfig::default() })
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// The ring's configuration (used to fork per-worker rings with the
    /// master's settings).
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Events recorded since enable (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events lost to wraparound.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// No events retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Advance the trace clock (the control channel syncs its simulated
    /// clock here; replay harnesses stamp packet timestamps).
    pub fn set_now(&mut self, t: Nanos) {
        self.now_ns = t.0;
    }

    /// Current trace clock.
    pub fn now(&self) -> Nanos {
        Nanos(self.now_ns)
    }

    /// Sync the epoch label without recording an event — used when tracing
    /// is enabled mid-run and the control plane is already past epoch 0.
    /// A *change* of epoch during tracing goes through
    /// [`TraceBuffer::note_epoch`] so the bump lands in the stream.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.checker.last_epoch = epoch;
    }

    /// The epoch currently stamped on new events.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Invariant violations observed so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            enabled: true,
            capacity: self.cfg.capacity as u64,
            recorded: self.next_seq,
            dropped: self.dropped,
            retained: self.slots.len() as u64,
            violations: self.violations.len() as u64,
        }
    }

    /// Append one event to the ring, running the invariant checker. A
    /// violation triggers the post-mortem dump (once per violation, capped
    /// at 16 retained violations).
    pub fn record(&mut self, kind: TraceEventKind) {
        let ev = TraceEvent { seq: self.next_seq, t_ns: self.now_ns, epoch: self.epoch, kind };
        self.next_seq += 1;
        if let Some(v) = self.checker.observe(&ev) {
            self.push(ev);
            if self.violations.len() < 16 {
                self.violations.push(v.clone());
                self.dump_postmortem(&format!("invariant violation: {v}"));
            }
            return;
        }
        self.push(ev);
    }

    /// Append an already-stamped event (its `t_ns`/`epoch` preserved, its
    /// `seq` renumbered into this ring's sequence). The merge path for
    /// per-worker rings: the online invariant checker is *not* re-run —
    /// worker rings were each checked live, and a merged interleaving
    /// legitimately nests packets inside control batches that ran
    /// concurrently on other threads.
    pub fn absorb(&mut self, ev: TraceEvent) {
        let ev = TraceEvent { seq: self.next_seq, ..ev };
        self.next_seq += 1;
        self.push(ev);
    }

    /// Fold `n` pre-merge drops into this ring's exact drop count (events
    /// a source ring lost to wraparound before the merge saw them).
    pub fn add_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.slots.len() < self.cfg.capacity {
            self.slots.push(ev);
        } else {
            // Wraparound: the oldest retained event is evicted — exact
            // drop accounting, no allocation.
            self.slots[self.head] = ev;
            self.head = (self.head + 1) % self.cfg.capacity;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first (causal order).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + Clone {
        let (older, newer) = self.slots.split_at(self.head);
        newer.iter().chain(older.iter())
    }

    /// The last `n` retained events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let skip = self.slots.len().saturating_sub(n);
        self.events().skip(skip).copied().collect()
    }

    // ---- control-side hooks -------------------------------------------

    /// A control batch opened; returns its id for [`TraceBuffer::batch_end`].
    pub fn batch_begin(&mut self, ops: usize) -> u64 {
        let batch = self.next_batch;
        self.next_batch += 1;
        self.record(TraceEventKind::BatchBegin { batch, ops: ops as u32 });
        batch
    }

    /// A control batch closed after `ops` applied operations.
    pub fn batch_end(&mut self, batch: u64, ops: usize, cost: Nanos) {
        self.record(TraceEventKind::BatchEnd { batch, ops: ops as u32, cost_ns: cost.0 });
    }

    /// One applied control operation (reads are not traced — they cannot
    /// affect packet-visible state).
    pub fn control_op(&mut self, op: &ControlOp, result: &OpResult) {
        match (op, result) {
            (ControlOp::InsertEntry { table, .. }, OpResult::Inserted(h)) => {
                self.record(TraceEventKind::EntryInsert {
                    gress: table.gress,
                    stage: table.stage as u16,
                    table: table.table as u16,
                    handle: h.0,
                });
            }
            (ControlOp::DeleteEntry { table, handle }, _) => {
                self.record(TraceEventKind::EntryDelete {
                    gress: table.gress,
                    stage: table.stage as u16,
                    table: table.table as u16,
                    handle: handle.0,
                });
            }
            (ControlOp::WriteReg { array, addr, .. }, _) => {
                self.record(TraceEventKind::RegWrite {
                    gress: array.gress,
                    stage: array.stage as u16,
                    array: array.array as u16,
                    addr: *addr,
                });
            }
            (ControlOp::ResetRegRange { array, start, .. }, _) => {
                self.record(TraceEventKind::RegWrite {
                    gress: array.gress,
                    stage: array.stage as u16,
                    array: array.array as u16,
                    addr: *start,
                });
            }
            _ => {}
        }
    }

    /// The control plane opened a new epoch: record the bump and stamp all
    /// subsequent events with it.
    pub fn note_epoch(&mut self, epoch: u64) {
        self.record(TraceEventKind::EpochBump { epoch });
        self.epoch = epoch;
    }

    /// A program lifecycle event completed.
    pub fn lifecycle(&mut self, kind: LifecycleKind, prog_id: u16, epoch: u64, dur: Nanos) {
        self.record(TraceEventKind::Lifecycle { kind, prog_id, epoch, dur_ns: dur.0 });
    }

    /// The fault plan fired a trigger on the control channel.
    pub fn fault_injected(&mut self, fault: crate::fault::FaultKind, at_op: u64) {
        self.record(TraceEventKind::FaultInjected { fault, at_op });
    }

    /// The controller started undoing a partially applied plan.
    pub fn rollback_begin(&mut self, prog_id: u16) {
        self.record(TraceEventKind::RollbackBegin { prog_id });
    }

    /// The rollback finished (`complete` = every applied op undone).
    pub fn rollback_end(&mut self, prog_id: u16, ops: u32, complete: bool) {
        self.record(TraceEventKind::RollbackEnd { prog_id, ops, complete });
    }

    /// The controller started a device-state audit.
    pub fn reconcile_begin(&mut self, generation: u64) {
        self.record(TraceEventKind::ReconcileBegin { generation });
    }

    /// The reconciliation pass finished.
    pub fn reconcile_end(&mut self, reinstalled: u32, deleted: u32) {
        self.record(TraceEventKind::ReconcileEnd { reinstalled, deleted });
    }

    /// The SLO watchdog crossed into breach on one objective.
    pub fn slo_violation(&mut self, slo: SloKind, prog_id: u16, observed: u64, threshold: u64) {
        self.record(TraceEventKind::SloViolation { slo, prog_id, observed, threshold });
    }

    /// The runtime-control server dequeued a client request.
    pub fn request_begin(&mut self, client: u32, request: u64, op: RequestOp) {
        self.record(TraceEventKind::RequestBegin { client, request, op });
    }

    /// The runtime-control server finished a client request.
    pub fn request_end(&mut self, client: u32, request: u64, op: RequestOp, ok: bool, dur_ns: u64) {
        self.record(TraceEventKind::RequestEnd { client, request, op, ok, dur_ns });
    }

    /// The runtime-control server refused a client request unexecuted.
    pub fn request_rejected(&mut self, client: u32, request: u64, reason: RejectReason) {
        self.record(TraceEventKind::RequestRejected { client, request, reason });
    }

    // ---- post-mortem ---------------------------------------------------

    /// Render the last `postmortem_last` events plus the reason into a
    /// `postmortem-<seq>.txt` artifact under the configured directory.
    /// Returns the path when a file was written.
    pub fn dump_postmortem(&mut self, reason: &str) -> Option<String> {
        let dir = self.cfg.postmortem_dir.clone()?;
        let text = self.render_postmortem(reason);
        let path = format!("{dir}/postmortem-{}.txt", self.next_seq);
        if std::fs::create_dir_all(&dir).is_err() || std::fs::write(&path, text).is_err() {
            return None;
        }
        self.postmortems.push(path.clone());
        Some(path)
    }

    /// The post-mortem text (also used when the artifact directory is
    /// disabled).
    pub fn render_postmortem(&self, reason: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("post-mortem: {reason}\n"));
        let s = self.stats();
        out.push_str(&format!(
            "ring: {} recorded, {} dropped, {} retained (capacity {})\n",
            s.recorded, s.dropped, s.retained, s.capacity
        ));
        for v in &self.violations {
            out.push_str(&format!("violation {v}\n"));
        }
        out.push_str(&format!("last {} events:\n", self.cfg.postmortem_last));
        for ev in self.tail(self.cfg.postmortem_last) {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

impl crate::telemetry::Recorder for TraceBuffer {
    fn table_lookup(&mut self, gress: Gress, stage: usize, hit: bool) {
        let packet = self.cur_packet;
        self.record(TraceEventKind::TableLookup { packet, gress, stage: stage as u16, hit });
    }

    fn action_executed(&mut self, gress: Gress, stage: usize) {
        let packet = self.cur_packet;
        self.record(TraceEventKind::ActionExecuted { packet, gress, stage: stage as u16 });
    }

    fn salu_rmw(&mut self, gress: Gress, stage: usize, wrote: bool) {
        let packet = self.cur_packet;
        self.record(TraceEventKind::SaluRmw { packet, gress, stage: stage as u16, wrote });
    }

    fn parser_path(&mut self, bitmap: u16) {
        let (packet, pass) = (self.cur_packet, self.cur_pass);
        self.record(TraceEventKind::ParserPath { packet, pass, bitmap });
    }

    fn tm_decision(&mut self, verdict: Verdict, report_copy: bool) {
        let (packet, pass) = (self.cur_packet, self.cur_pass);
        self.record(TraceEventKind::TmVerdict { packet, pass, verdict, report: report_copy });
    }

    fn packet_begin(&mut self, packet: u64, port: u16, len: u32) {
        self.cur_packet = packet;
        self.cur_pass = 0;
        self.record(TraceEventKind::PacketStart { packet, port, len });
    }

    fn packet_flow(&mut self, packet: u64, src: u32, dst: u32, sport: u16, dport: u16, proto: u8) {
        self.record(TraceEventKind::PacketFlow { packet, src, dst, sport, dport, proto });
    }

    fn pass_begin(&mut self, packet: u64, pass: u8) {
        self.cur_packet = packet;
        self.cur_pass = pass;
        self.record(TraceEventKind::PassBegin { packet, pass });
    }

    fn packet_end(&mut self, packet: u64, passes: u8, dropped: bool) {
        self.record(TraceEventKind::PacketEnd { packet, passes, dropped });
    }
}

// ---- merging -----------------------------------------------------------

/// Merge several rings (the master's control ring plus per-worker packet
/// rings) into one causally ordered ring, deterministically: events sort
/// by trace time, then control-before-packet, then packet id, then source
/// sequence — none of which depend on how packets were sharded across
/// workers, so the merged stream is worker-count-independent whenever
/// packet ids are (the parallel driver assigns them by global trace
/// position). Sequence numbers are renumbered contiguously and drop
/// accounting is exact: the merged ring starts from the sum of the source
/// rings' drops and adds its own wraparound drops on top.
///
/// The online [`InvariantChecker`] is deliberately *not* re-run on the
/// merged stream (see [`TraceBuffer::absorb`]); consult each source
/// ring's [`TraceBuffer::violations`] instead.
pub fn merge_rings<'a>(
    rings: impl IntoIterator<Item = &'a TraceBuffer>,
    cfg: TraceConfig,
) -> TraceBuffer {
    let mut all: Vec<TraceEvent> = Vec::new();
    let mut dropped = 0;
    let mut now = 0u64;
    let mut epoch = 0u64;
    for r in rings {
        dropped += r.dropped_events();
        now = now.max(r.now().0);
        epoch = epoch.max(r.epoch());
        all.extend(r.events().copied());
    }
    all.sort_by_key(|ev| {
        let packet = ev.kind.packet();
        (ev.t_ns, packet.is_some(), packet.unwrap_or(0), ev.seq)
    });
    let mut out = TraceBuffer::new(cfg);
    out.add_dropped(dropped);
    for ev in all {
        out.absorb(ev);
    }
    out.set_now(Nanos(now));
    out.set_epoch(epoch);
    out
}

/// Extract the IPv4 five-tuple of an Ethernet frame (big-endian addresses),
/// `None` unless the frame is IPv4 carrying TCP or UDP. This is the
/// flow key the [`TraceEventKind::PacketFlow`] event and the
/// [`TraceFilter::Flow`] selector use; it deliberately reads raw bytes so
/// `rmt-sim` needs no packet-format dependency.
pub fn frame_five_tuple(frame: &[u8]) -> Option<(u32, u32, u16, u16, u8)> {
    if frame.len() < 34 || frame[12] != 0x08 || frame[13] != 0x00 {
        return None;
    }
    let ihl = usize::from(frame[14] & 0x0f) * 4;
    if !(20..=60).contains(&ihl) {
        return None;
    }
    let proto = frame[23];
    if proto != 6 && proto != 17 {
        return None;
    }
    let l4 = 14 + ihl;
    if frame.len() < l4 + 4 {
        return None;
    }
    let src = u32::from_be_bytes([frame[26], frame[27], frame[28], frame[29]]);
    let dst = u32::from_be_bytes([frame[30], frame[31], frame[32], frame[33]]);
    let sport = u16::from_be_bytes([frame[l4], frame[l4 + 1]]);
    let dport = u16::from_be_bytes([frame[l4 + 2], frame[l4 + 3]]);
    Some((src, dst, sport, dport, proto))
}

// ---- journeys ----------------------------------------------------------

/// One pipeline pass of a reconstructed journey.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JourneyPass {
    /// Pass number (1-based).
    pub pass: u8,
    /// Parse-path bitmap, when the parser event is retained.
    pub bitmap: Option<u16>,
    /// `(gress, stage, hit)` per table lookup, pipeline order.
    pub lookups: Vec<(Gress, u16, bool)>,
    /// `(gress, stage)` per executed action.
    pub actions: Vec<(Gress, u16)>,
    /// `(gress, stage, wrote)` per SALU cycle.
    pub salus: Vec<(Gress, u16, bool)>,
    /// The pass's TM verdict.
    pub verdict: Option<(Verdict, bool)>,
}

/// A packet's reconstructed journey through the switch.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketJourney {
    /// Packet id.
    pub packet: u64,
    /// Ingress port, when the start event is retained.
    pub port: Option<u16>,
    /// Frame length, when the start event is retained.
    pub len: Option<u32>,
    /// Five-tuple `(src, dst, sport, dport, proto)`, when parsed.
    pub flow: Option<(u32, u32, u16, u16, u8)>,
    /// Per-pass records, pass order.
    pub passes: Vec<JourneyPass>,
    /// Terminal record `(passes, dropped)`, when the end event is retained.
    pub end: Option<(u8, bool)>,
    /// Every distinct epoch stamped on this packet's events.
    pub epochs: Vec<u64>,
    /// True when the ring evicted part of this journey (its first retained
    /// event is not `PacketStart`).
    pub truncated: bool,
}

impl PacketJourney {
    /// The final pass's verdict, if retained.
    pub fn final_verdict(&self) -> Option<Verdict> {
        self.passes.iter().rev().find_map(|p| p.verdict.map(|(v, _)| v))
    }

    /// Recirculation count: passes beyond the first.
    pub fn recirculations(&self) -> usize {
        self.passes.len().saturating_sub(1)
    }

    /// Distinct `(gress, stage)` pairs that *hit* an installed entry.
    pub fn stages_hit(&self) -> Vec<(Gress, u16)> {
        let mut out: Vec<(Gress, u16)> = Vec::new();
        for p in &self.passes {
            for &(g, s, hit) in &p.lookups {
                if hit && !out.contains(&(g, s)) {
                    out.push((g, s));
                }
            }
        }
        out
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = format!("packet {}", self.packet);
        if let Some(port) = self.port {
            out.push_str(&format!(" (port {port}, {} B)", self.len.unwrap_or(0)));
        }
        if let Some((src, dst, sport, dport, proto)) = self.flow {
            out.push_str(&format!(
                " {}.{}.{}.{}:{sport} > {}.{}.{}.{}:{dport}/{proto}",
                src >> 24,
                (src >> 16) & 0xff,
                (src >> 8) & 0xff,
                src & 0xff,
                dst >> 24,
                (dst >> 16) & 0xff,
                (dst >> 8) & 0xff,
                dst & 0xff
            ));
        }
        if self.truncated {
            out.push_str(" [truncated]");
        }
        out.push('\n');
        for p in &self.passes {
            out.push_str(&format!("  pass {}:", p.pass));
            if let Some(b) = p.bitmap {
                out.push_str(&format!(" parse {b:#06x}"));
            }
            for &(g, s, hit) in &p.lookups {
                out.push_str(&format!(" {g}[{s}]{}", if hit { "+" } else { "-" }));
            }
            for &(g, s, wrote) in &p.salus {
                out.push_str(&format!(" salu:{g}[{s}]{}", if wrote { "w" } else { "r" }));
            }
            if let Some((v, report)) = p.verdict {
                out.push_str(&format!(" → {v:?}{}", if report { "+report" } else { "" }));
            }
            out.push('\n');
        }
        if let Some((passes, dropped)) = self.end {
            out.push_str(&format!(
                "  end: {passes} pass(es), {}, epochs {:?}\n",
                if dropped { "dropped" } else { "emitted" },
                self.epochs
            ));
        }
        out
    }
}

/// Reconstruct one packet's journey from a causally ordered event slice.
/// Returns `None` when no event of that packet is retained.
pub fn journey<'a>(
    events: impl IntoIterator<Item = &'a TraceEvent>,
    packet: u64,
) -> Option<PacketJourney> {
    let mut j = PacketJourney {
        packet,
        port: None,
        len: None,
        flow: None,
        passes: Vec::new(),
        end: None,
        epochs: Vec::new(),
        truncated: false,
    };
    let mut seen = false;
    for ev in events {
        if ev.kind.packet() != Some(packet) {
            continue;
        }
        if !seen {
            seen = true;
            j.truncated = !matches!(ev.kind, TraceEventKind::PacketStart { .. });
        }
        if !j.epochs.contains(&ev.epoch) {
            j.epochs.push(ev.epoch);
        }
        match ev.kind {
            TraceEventKind::PacketStart { port, len, .. } => {
                j.port = Some(port);
                j.len = Some(len);
            }
            TraceEventKind::PacketFlow { src, dst, sport, dport, proto, .. } => {
                j.flow = Some((src, dst, sport, dport, proto));
            }
            TraceEventKind::PassBegin { pass, .. } => {
                j.passes.push(JourneyPass { pass, ..JourneyPass::default() });
            }
            TraceEventKind::ParserPath { pass, bitmap, .. } => {
                let p = last_pass(&mut j, pass);
                p.bitmap = Some(bitmap);
            }
            TraceEventKind::TableLookup { gress, stage, hit, .. } => {
                let p = last_pass(&mut j, 1);
                p.lookups.push((gress, stage, hit));
            }
            TraceEventKind::ActionExecuted { gress, stage, .. } => {
                let p = last_pass(&mut j, 1);
                p.actions.push((gress, stage));
            }
            TraceEventKind::SaluRmw { gress, stage, wrote, .. } => {
                let p = last_pass(&mut j, 1);
                p.salus.push((gress, stage, wrote));
            }
            TraceEventKind::TmVerdict { pass, verdict, report, .. } => {
                let p = last_pass(&mut j, pass);
                p.verdict = Some((verdict, report));
            }
            TraceEventKind::PacketEnd { passes, dropped, .. } => {
                j.end = Some((passes, dropped));
            }
            _ => {}
        }
    }
    seen.then_some(j)
}

/// The journey's current pass record, opening one when events arrive with
/// their `PassBegin` evicted.
fn last_pass(j: &mut PacketJourney, pass: u8) -> &mut JourneyPass {
    if j.passes.is_empty() {
        j.passes.push(JourneyPass { pass, ..JourneyPass::default() });
    }
    j.passes.last_mut().expect("just ensured non-empty")
}

// ---- filtering ---------------------------------------------------------

/// Event selection for `trace dump`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFilter {
    /// Everything.
    All,
    /// Control-side events only.
    Control,
    /// Packet-side events only.
    Packets,
    /// Events touching one table (lookups plus its entry churn).
    Table {
        /// Gress.
        gress: Gress,
        /// Stage.
        stage: u16,
        /// Table within the stage.
        table: u16,
    },
    /// Events of packets whose five-tuple involves this IPv4 address (and
    /// port, when given) as source or destination.
    Flow {
        /// IPv4 address, big-endian u32.
        addr: u32,
        /// Optional source-or-destination port.
        port: Option<u16>,
    },
}

/// Apply a filter over a causally ordered stream, returning retained
/// events oldest first. Flow filters resolve the matching packet ids from
/// the stream's `PacketFlow` events first, then keep every event of those
/// packets.
pub fn filter_events<'a>(
    events: impl IntoIterator<Item = &'a TraceEvent> + Clone,
    filter: TraceFilter,
) -> Vec<TraceEvent> {
    let flow_packets: std::collections::HashSet<u64> = match filter {
        TraceFilter::Flow { addr, port } => events
            .clone()
            .into_iter()
            .filter_map(|ev| match ev.kind {
                TraceEventKind::PacketFlow { packet, src, dst, sport, dport, .. } => {
                    let addr_ok = src == addr || dst == addr;
                    let port_ok = port.is_none_or(|p| sport == p || dport == p);
                    (addr_ok && port_ok).then_some(packet)
                }
                _ => None,
            })
            .collect(),
        _ => Default::default(),
    };
    events
        .into_iter()
        .filter(|ev| match filter {
            TraceFilter::All => true,
            TraceFilter::Control => ev.kind.packet().is_none(),
            TraceFilter::Packets => ev.kind.packet().is_some(),
            TraceFilter::Table { gress, stage, table } => match ev.kind {
                TraceEventKind::TableLookup { gress: g, stage: s, .. } => {
                    g == gress && s == stage
                }
                TraceEventKind::EntryInsert { gress: g, stage: s, table: t, .. }
                | TraceEventKind::EntryDelete { gress: g, stage: s, table: t, .. } => {
                    g == gress && s == stage && t == table
                }
                _ => false,
            },
            TraceFilter::Flow { .. } => {
                ev.kind.packet().is_some_and(|p| flow_packets.contains(&p))
            }
        })
        .copied()
        .collect()
}

// ---- Chrome trace export ----------------------------------------------

fn chrome_args(fields: Vec<(&str, serde::Value)>) -> serde::Value {
    serde::Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[allow(clippy::too_many_arguments)]
fn chrome_event(
    name: &str,
    cat: &str,
    ph: &str,
    ts_us: f64,
    pid: u64,
    tid: u64,
    extra: Vec<(&str, serde::Value)>,
    args: Vec<(&str, serde::Value)>,
) -> serde::Value {
    let mut fields = vec![
        ("name".to_string(), serde::Value::Str(name.to_string())),
        ("cat".to_string(), serde::Value::Str(cat.to_string())),
        ("ph".to_string(), serde::Value::Str(ph.to_string())),
        ("ts".to_string(), serde::Value::F64(ts_us)),
        ("pid".to_string(), serde::Value::U64(pid)),
        ("tid".to_string(), serde::Value::U64(tid)),
    ];
    for (k, v) in extra {
        fields.push((k.to_string(), v));
    }
    fields.push(("args".to_string(), chrome_args(args)));
    serde::Value::Object(fields)
}

const CONTROL_PID: u64 = 1;
const PACKET_PID: u64 = 2;

/// Export a causally ordered stream as a Chrome trace-event document
/// (Perfetto-viewable). Control-plane events land on one process track
/// (`pid 1`): batches and lifecycle spans as complete (`X`) slices, entry
/// churn and epoch bumps as instants. Packet journeys land on a second
/// process track (`pid 2`) with one thread row per packet id, every hook
/// event an instant carrying its payload in `args`.
pub fn chrome_trace<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> serde::Value {
    let mut out: Vec<serde::Value> = vec![
        chrome_event(
            "process_name",
            "__metadata",
            "M",
            0.0,
            CONTROL_PID,
            0,
            vec![],
            vec![("name", serde::Value::Str("control-plane".into()))],
        ),
        chrome_event(
            "process_name",
            "__metadata",
            "M",
            0.0,
            PACKET_PID,
            0,
            vec![],
            vec![("name", serde::Value::Str("packet-journeys".into()))],
        ),
    ];
    for ev in events {
        let ts = ev.t_ns as f64 / 1e3;
        let seq = ("seq", serde::Value::U64(ev.seq));
        let epoch = ("epoch", serde::Value::U64(ev.epoch));
        let v = match ev.kind {
            TraceEventKind::BatchBegin { .. } => continue, // folded into BatchEnd's slice
            TraceEventKind::BatchEnd { batch, ops, cost_ns } => chrome_event(
                "batch",
                "control",
                "X",
                ts,
                CONTROL_PID,
                0,
                vec![("dur", serde::Value::F64(cost_ns as f64 / 1e3))],
                vec![
                    seq,
                    epoch,
                    ("batch", serde::Value::U64(batch)),
                    ("ops", serde::Value::U64(u64::from(ops))),
                ],
            ),
            TraceEventKind::Lifecycle { kind, prog_id, epoch: e, dur_ns } => chrome_event(
                match kind {
                    LifecycleKind::Deploy => "deploy",
                    LifecycleKind::Revoke => "revoke",
                },
                "lifecycle",
                "X",
                ts,
                CONTROL_PID,
                1,
                vec![("dur", serde::Value::F64(dur_ns as f64 / 1e3))],
                vec![
                    seq,
                    ("prog_id", serde::Value::U64(u64::from(prog_id))),
                    ("epoch", serde::Value::U64(e)),
                ],
            ),
            TraceEventKind::EntryInsert { gress, stage, table, handle }
            | TraceEventKind::EntryDelete { gress, stage, table, handle } => chrome_event(
                ev.kind.name(),
                "control",
                "i",
                ts,
                CONTROL_PID,
                0,
                vec![("s", serde::Value::Str("t".into()))],
                vec![
                    seq,
                    epoch,
                    ("gress", serde::Value::Str(gress.to_string())),
                    ("stage", serde::Value::U64(u64::from(stage))),
                    ("table", serde::Value::U64(u64::from(table))),
                    ("handle", serde::Value::U64(handle)),
                ],
            ),
            TraceEventKind::RegWrite { gress, stage, array, addr } => chrome_event(
                "reg_write",
                "control",
                "i",
                ts,
                CONTROL_PID,
                0,
                vec![("s", serde::Value::Str("t".into()))],
                vec![
                    seq,
                    epoch,
                    ("gress", serde::Value::Str(gress.to_string())),
                    ("stage", serde::Value::U64(u64::from(stage))),
                    ("array", serde::Value::U64(u64::from(array))),
                    ("addr", serde::Value::U64(u64::from(addr))),
                ],
            ),
            TraceEventKind::EpochBump { epoch: e } => chrome_event(
                "epoch_bump",
                "control",
                "i",
                ts,
                CONTROL_PID,
                0,
                vec![("s", serde::Value::Str("p".into()))],
                vec![seq, ("epoch", serde::Value::U64(e))],
            ),
            TraceEventKind::FaultInjected { fault, at_op } => chrome_event(
                "fault_injected",
                "fault",
                "i",
                ts,
                CONTROL_PID,
                0,
                vec![("s", serde::Value::Str("p".into()))],
                vec![
                    seq,
                    epoch,
                    ("fault", serde::Value::Str(fault.name().into())),
                    ("at_op", serde::Value::U64(at_op)),
                ],
            ),
            TraceEventKind::RollbackBegin { prog_id } => chrome_event(
                "rollback_begin",
                "fault",
                "i",
                ts,
                CONTROL_PID,
                0,
                vec![("s", serde::Value::Str("t".into()))],
                vec![seq, epoch, ("prog_id", serde::Value::U64(u64::from(prog_id)))],
            ),
            TraceEventKind::RollbackEnd { prog_id, ops, complete } => chrome_event(
                "rollback_end",
                "fault",
                "i",
                ts,
                CONTROL_PID,
                0,
                vec![("s", serde::Value::Str("t".into()))],
                vec![
                    seq,
                    epoch,
                    ("prog_id", serde::Value::U64(u64::from(prog_id))),
                    ("ops", serde::Value::U64(u64::from(ops))),
                    ("complete", serde::Value::Bool(complete)),
                ],
            ),
            TraceEventKind::ReconcileBegin { generation } => chrome_event(
                "reconcile_begin",
                "fault",
                "i",
                ts,
                CONTROL_PID,
                0,
                vec![("s", serde::Value::Str("t".into()))],
                vec![seq, epoch, ("generation", serde::Value::U64(generation))],
            ),
            TraceEventKind::ReconcileEnd { reinstalled, deleted } => chrome_event(
                "reconcile_end",
                "fault",
                "i",
                ts,
                CONTROL_PID,
                0,
                vec![("s", serde::Value::Str("t".into()))],
                vec![
                    seq,
                    epoch,
                    ("reinstalled", serde::Value::U64(u64::from(reinstalled))),
                    ("deleted", serde::Value::U64(u64::from(deleted))),
                ],
            ),
            TraceEventKind::SloViolation { slo, prog_id, observed, threshold } => chrome_event(
                "slo_violation",
                "slo",
                "i",
                ts,
                CONTROL_PID,
                0,
                vec![("s", serde::Value::Str("t".into()))],
                vec![
                    seq,
                    epoch,
                    ("slo", serde::Value::Str(slo.name().into())),
                    ("prog_id", serde::Value::U64(u64::from(prog_id))),
                    ("observed", serde::Value::U64(observed)),
                    ("threshold", serde::Value::U64(threshold)),
                ],
            ),
            TraceEventKind::RequestBegin { client, request, op } => chrome_event(
                op.name(),
                "server",
                "i",
                ts,
                CONTROL_PID,
                2,
                vec![("s", serde::Value::Str("t".into()))],
                vec![
                    seq,
                    epoch,
                    ("client", serde::Value::U64(u64::from(client))),
                    ("request", serde::Value::U64(request)),
                ],
            ),
            TraceEventKind::RequestEnd { client, request, op, ok, dur_ns } => chrome_event(
                op.name(),
                "server",
                "X",
                ts,
                CONTROL_PID,
                2,
                vec![("dur", serde::Value::F64(dur_ns as f64 / 1e3))],
                vec![
                    seq,
                    epoch,
                    ("client", serde::Value::U64(u64::from(client))),
                    ("request", serde::Value::U64(request)),
                    ("ok", serde::Value::Bool(ok)),
                ],
            ),
            TraceEventKind::RequestRejected { client, request, reason } => chrome_event(
                "request_rejected",
                "server",
                "i",
                ts,
                CONTROL_PID,
                2,
                vec![("s", serde::Value::Str("t".into()))],
                vec![
                    seq,
                    epoch,
                    ("client", serde::Value::U64(u64::from(client))),
                    ("request", serde::Value::U64(request)),
                    ("reason", serde::Value::Str(reason.name().into())),
                ],
            ),
            kind => {
                let packet = kind.packet().unwrap_or(0);
                let mut args = vec![seq, epoch, ("packet", serde::Value::U64(packet))];
                match kind {
                    TraceEventKind::PacketStart { port, len, .. } => {
                        args.push(("port", serde::Value::U64(u64::from(port))));
                        args.push(("len", serde::Value::U64(u64::from(len))));
                    }
                    TraceEventKind::ParserPath { pass, bitmap, .. } => {
                        args.push(("pass", serde::Value::U64(u64::from(pass))));
                        args.push(("bitmap", serde::Value::Str(format!("{bitmap:#06x}"))));
                    }
                    TraceEventKind::TableLookup { gress, stage, hit, .. } => {
                        args.push(("gress", serde::Value::Str(gress.to_string())));
                        args.push(("stage", serde::Value::U64(u64::from(stage))));
                        args.push(("hit", serde::Value::Bool(hit)));
                    }
                    TraceEventKind::SaluRmw { gress, stage, wrote, .. } => {
                        args.push(("gress", serde::Value::Str(gress.to_string())));
                        args.push(("stage", serde::Value::U64(u64::from(stage))));
                        args.push(("wrote", serde::Value::Bool(wrote)));
                    }
                    TraceEventKind::TmVerdict { pass, verdict, report, .. } => {
                        args.push(("pass", serde::Value::U64(u64::from(pass))));
                        args.push(("verdict", serde::Value::Str(format!("{verdict:?}"))));
                        args.push(("report", serde::Value::Bool(report)));
                    }
                    TraceEventKind::PacketEnd { passes, dropped, .. } => {
                        args.push(("passes", serde::Value::U64(u64::from(passes))));
                        args.push(("dropped", serde::Value::Bool(dropped)));
                    }
                    _ => {}
                }
                chrome_event(
                    kind.name(),
                    "packet",
                    "i",
                    ts,
                    PACKET_PID,
                    packet,
                    vec![("s", serde::Value::Str("t".into()))],
                    args,
                )
            }
        };
        out.push(v);
    }
    serde::Value::Object(vec![
        ("traceEvents".to_string(), serde::Value::Array(out)),
        ("displayTimeUnit".to_string(), serde::Value::Str("ns".to_string())),
    ])
}

/// [`chrome_trace`] rendered to a pretty-printed JSON string.
pub fn chrome_trace_json<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    serde::json::to_string_pretty(&chrome_trace(events))
}

/// Group every retained journey by packet id, oldest packet first.
pub fn journeys<'a>(
    events: impl IntoIterator<Item = &'a TraceEvent> + Clone,
) -> Vec<PacketJourney> {
    let mut ids: Vec<u64> = Vec::new();
    let mut seen = BTreeMap::new();
    for ev in events.clone() {
        if let Some(p) = ev.kind.packet() {
            if seen.insert(p, ()).is_none() {
                ids.push(p);
            }
        }
    }
    ids.into_iter().filter_map(|p| journey(events.clone(), p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Recorder;

    fn pkt_events(t: &mut TraceBuffer, packet: u64) {
        t.packet_begin(packet, 3, 64);
        t.pass_begin(packet, 1);
        t.parser_path(0x0003);
        t.table_lookup(Gress::Ingress, 0, true);
        t.action_executed(Gress::Ingress, 0);
        t.tm_decision(Verdict::Forward(9), false);
        t.packet_end(packet, 1, false);
    }

    #[test]
    fn ring_wraparound_keeps_seq_monotonic_and_drops_exact() {
        let mut t = TraceBuffer::new(TraceConfig {
            capacity: 8,
            postmortem_dir: None,
            ..TraceConfig::default()
        });
        for i in 0..30u64 {
            t.record(TraceEventKind::EpochBump { epoch: i });
        }
        assert_eq!(t.recorded(), 30);
        assert_eq!(t.dropped_events(), 22);
        assert_eq!(t.len(), 8);
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, (22..30).collect::<Vec<_>>(), "last 8, contiguous, oldest first");
        let s = t.stats();
        assert_eq!((s.recorded, s.dropped, s.retained), (30, 22, 8));
        assert!(s.enabled);
    }

    #[test]
    fn journey_reconstruction_matches_recorded_hooks() {
        let mut t = TraceBuffer::with_capacity(64);
        pkt_events(&mut t, 7);
        // A second packet that recirculates once and drops.
        t.packet_begin(8, 0, 80);
        t.pass_begin(8, 1);
        t.parser_path(0x0001);
        t.table_lookup(Gress::Ingress, 0, false);
        t.tm_decision(Verdict::Recirculate, false);
        t.pass_begin(8, 2);
        t.parser_path(0x0001);
        t.table_lookup(Gress::Ingress, 0, true);
        t.salu_rmw(Gress::Ingress, 1, true);
        t.tm_decision(Verdict::Drop, true);
        t.packet_end(8, 2, true);

        let j7 = journey(t.events(), 7).unwrap();
        assert_eq!(j7.port, Some(3));
        assert_eq!(j7.final_verdict(), Some(Verdict::Forward(9)));
        assert_eq!(j7.recirculations(), 0);
        assert_eq!(j7.stages_hit(), vec![(Gress::Ingress, 0)]);
        assert_eq!(j7.end, Some((1, false)));
        assert!(!j7.truncated);

        let j8 = journey(t.events(), 8).unwrap();
        assert_eq!(j8.passes.len(), 2);
        assert_eq!(j8.recirculations(), 1);
        assert_eq!(j8.final_verdict(), Some(Verdict::Drop));
        assert_eq!(j8.passes[1].salus, vec![(Gress::Ingress, 1, true)]);
        assert_eq!(j8.end, Some((2, true)));
        assert!(j8.render().contains("pass 2"));

        assert_eq!(journeys(t.events()).len(), 2);
        assert!(journey(t.events(), 99).is_none());
    }

    #[test]
    fn checker_fires_on_packet_during_batch() {
        let mut t = TraceBuffer::new(TraceConfig {
            capacity: 64,
            postmortem_dir: None,
            ..TraceConfig::default()
        });
        let b = t.batch_begin(2);
        // Corrupted interleaving: a packet event lands inside the batch.
        t.packet_begin(1, 0, 64);
        assert_eq!(t.violations().len(), 1);
        assert_eq!(t.violations()[0].rule, "packet-during-batch");
        t.batch_end(b, 2, Nanos::from_micros(600));
        // Clean traffic afterwards does not re-fire.
        pkt_events(&mut t, 2);
        assert_eq!(t.violations().len(), 1);
    }

    #[test]
    fn checker_fires_on_epoch_split_and_regression() {
        let mut t = TraceBuffer::new(TraceConfig {
            capacity: 64,
            postmortem_dir: None,
            ..TraceConfig::default()
        });
        t.note_epoch(1);
        let b = t.batch_begin(1);
        t.note_epoch(2);
        t.batch_end(b, 1, Nanos::ZERO);
        assert_eq!(t.violations()[0].rule, "epoch-splits-batch");
        t.note_epoch(1);
        assert_eq!(t.violations()[1].rule, "epoch-regression");
    }

    #[test]
    fn postmortem_renders_reason_and_tail() {
        let mut t = TraceBuffer::new(TraceConfig {
            capacity: 16,
            postmortem_dir: None,
            postmortem_last: 4,
        });
        pkt_events(&mut t, 1);
        let text = t.render_postmortem("unit test");
        assert!(text.contains("post-mortem: unit test"), "{text}");
        assert!(text.contains("last 4 events"), "{text}");
        assert!(text.lines().count() >= 6, "{text}");
        // Disabled directory → no artifact.
        assert!(t.dump_postmortem("x").is_none());
    }

    #[test]
    fn filters_select_tables_and_flows() {
        let mut t = TraceBuffer::with_capacity(128);
        t.packet_begin(1, 0, 64);
        t.packet_flow(1, 0x0a000001, 0x0a000002, 1000, 7777, 17);
        t.pass_begin(1, 1);
        t.table_lookup(Gress::Ingress, 2, true);
        t.packet_end(1, 1, false);
        t.packet_begin(2, 0, 64);
        t.packet_flow(2, 0x0a000003, 0x0a000004, 2000, 8888, 6);
        t.pass_begin(2, 1);
        t.table_lookup(Gress::Egress, 2, false);
        t.packet_end(2, 1, false);
        t.record(TraceEventKind::EntryInsert {
            gress: Gress::Ingress,
            stage: 2,
            table: 0,
            handle: 5,
        });

        let tbl = filter_events(
            t.events(),
            TraceFilter::Table { gress: Gress::Ingress, stage: 2, table: 0 },
        );
        assert_eq!(tbl.len(), 2, "one lookup + one insert: {tbl:?}");

        let flow = filter_events(
            t.events(),
            TraceFilter::Flow { addr: 0x0a000001, port: None },
        );
        assert!(flow.iter().all(|e| e.kind.packet() == Some(1)));
        assert_eq!(flow.len(), 5);
        let flow_port = filter_events(
            t.events(),
            TraceFilter::Flow { addr: 0x0a000003, port: Some(9999) },
        );
        assert!(flow_port.is_empty());

        let ctl = filter_events(t.events(), TraceFilter::Control);
        assert_eq!(ctl.len(), 1);
        let pkts = filter_events(t.events(), TraceFilter::Packets);
        assert_eq!(pkts.len(), t.len() - 1);
    }

    #[test]
    fn chrome_trace_shapes_tracks_and_roundtrips() {
        let mut t = TraceBuffer::with_capacity(128);
        let b = t.batch_begin(1);
        t.record(TraceEventKind::EntryInsert {
            gress: Gress::Ingress,
            stage: 0,
            table: 0,
            handle: 1,
        });
        t.batch_end(b, 1, Nanos::from_micros(930));
        t.note_epoch(1);
        t.lifecycle(LifecycleKind::Deploy, 1, 1, Nanos::from_millis(4));
        pkt_events(&mut t, 1);

        let text = chrome_trace_json(t.events());
        let doc = serde::json::parse(&text).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 metadata + all events except the folded BatchBegin.
        assert_eq!(evs.len(), 2 + t.len() - 1);
        let phases: Vec<&str> = evs
            .iter()
            .filter_map(|e| match e.get("ph") {
                Some(serde::Value::Str(s)) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(phases.contains(&"X"), "batch + lifecycle slices");
        assert!(phases.contains(&"i"), "instants");
        assert!(phases.contains(&"M"), "track metadata");
        // Batch slice carries its duration in microseconds.
        let batch = evs
            .iter()
            .find(|e| matches!(e.get("name"), Some(serde::Value::Str(s)) if s == "batch"))
            .unwrap();
        assert_eq!(batch.get("dur"), Some(&serde::Value::F64(930.0)));
    }

    #[test]
    fn stats_serde_roundtrip() {
        let s = TraceStats {
            enabled: true,
            capacity: 256,
            recorded: 300,
            dropped: 44,
            retained: 256,
            violations: 1,
        };
        let text = serde::json::to_string(&s);
        let back: TraceStats = serde::json::from_str(&text).unwrap();
        assert_eq!(back, s);
        assert!(!TraceStats::disabled().enabled);
    }
}
