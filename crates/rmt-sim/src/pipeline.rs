//! Stages and pipelines.
//!
//! A pipeline is an ordered list of stages; a stage owns its match-action
//! tables and its stateful register arrays. The simulator executes tables
//! within a stage in declaration order and stages front-to-back — the
//! feed-forward-only constraint of RMT: once a packet passes a stage, that
//! stage's memory is unreachable, which is exactly why the P4runpro
//! compiler must align same-memory primitives to the same physical RPB
//! (allocation constraint (5) in §4.3).

use crate::action::ActionScratch;
use crate::error::{SimError, SimResult};
use crate::phv::{FieldId, FieldTable, Phv};
use crate::salu::RegArray;
use crate::table::Table;
use crate::telemetry::{NopRecorder, Recorder};

/// Which pipeline a stage belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gress {
    /// Ingress.
    Ingress,
    /// Egress.
    Egress,
}

impl core::fmt::Display for Gress {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Gress::Ingress => write!(f, "ingress"),
            Gress::Egress => write!(f, "egress"),
        }
    }
}

/// Hardware limits of one physical stage, used at provisioning time.
///
/// The defaults approximate a Tofino-class stage: they are what the
/// resource report (Figure 10) and the power model (Table 2) normalize
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageLimits {
    /// SRAM blocks (1024 × 128 b each → 4096 32-bit words as register
    /// memory).
    pub sram_blocks: usize,
    /// TCAM blocks (512 entries × 44 b each).
    pub tcam_blocks: usize,
    /// VLIW micro-op slots across the stage's action memory.
    pub vliw_slots: usize,
    /// Stateful ALUs.
    pub salus: usize,
    /// Hash-distribution output bits.
    pub hash_bits: usize,
    /// Logical table IDs.
    pub ltids: usize,
}

impl Default for StageLimits {
    fn default() -> Self {
        StageLimits {
            sram_blocks: 80,
            tcam_blocks: 24,
            vliw_slots: 240,
            salus: 4,
            hash_bits: 104,
            ltids: 16,
        }
    }
}

/// One pipeline stage.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Gress.
    pub gress: Gress,
    /// Index.
    pub index: usize,
    /// Limits.
    pub limits: StageLimits,
    /// Tables.
    pub tables: Vec<Table>,
    /// Arrays.
    pub arrays: Vec<RegArray>,
    /// Reusable action-execution buffers (write set, hash input), so the
    /// per-packet match-action loop performs no heap allocation.
    scratch: ActionScratch,
}

impl Stage {
    /// Construct with defaults appropriate to the type.
    pub fn new(gress: Gress, index: usize, limits: StageLimits) -> Stage {
        Stage {
            gress,
            index,
            limits,
            tables: Vec::new(),
            arrays: Vec::new(),
            scratch: ActionScratch::default(),
        }
    }

    /// Add a table; returns its index within the stage.
    pub fn add_table(&mut self, table: Table) -> usize {
        self.tables.push(table);
        self.tables.len() - 1
    }

    /// Add a register array; returns its index within the stage.
    pub fn add_array(&mut self, array: RegArray) -> usize {
        self.arrays.push(array);
        self.arrays.len() - 1
    }

    /// Table.
    pub fn table(&self, idx: usize) -> SimResult<&Table> {
        self.tables.get(idx).ok_or_else(|| SimError::NoSuchTable(format!(
            "{} stage {} table {idx}",
            self.gress, self.index
        )))
    }

    /// Table mut.
    pub fn table_mut(&mut self, idx: usize) -> SimResult<&mut Table> {
        let (gress, index) = (self.gress, self.index);
        self.tables.get_mut(idx).ok_or_else(|| SimError::NoSuchTable(format!(
            "{gress} stage {index} table {idx}"
        )))
    }

    /// Array.
    pub fn array(&self, idx: usize) -> SimResult<&RegArray> {
        self.arrays.get(idx).ok_or_else(|| SimError::NoSuchRegArray(format!(
            "{} stage {} array {idx}",
            self.gress, self.index
        )))
    }

    /// Array mut.
    pub fn array_mut(&mut self, idx: usize) -> SimResult<&mut RegArray> {
        let (gress, index) = (self.gress, self.index);
        self.arrays.get_mut(idx).ok_or_else(|| SimError::NoSuchRegArray(format!(
            "{gress} stage {index} array {idx}"
        )))
    }

    /// Execute all tables of this stage against `phv`, in order.
    pub fn execute(&mut self, ft: &FieldTable, phv: &mut Phv) -> SimResult<()> {
        self.execute_with(ft, phv, &mut NopRecorder)
    }

    /// [`Stage::execute`], reporting lookup/action/SALU events into `rec`.
    pub fn execute_with(
        &mut self,
        ft: &FieldTable,
        phv: &mut Phv,
        rec: &mut dyn Recorder,
    ) -> SimResult<()> {
        self.execute_attributed(ft, phv, rec, None)
    }

    /// [`Stage::execute_with`] with per-program attribution: when `attr`
    /// names the PHV field carrying the owning program id, the recorder's
    /// program context is refreshed from the PHV before this stage's
    /// events fire — so events after the filter table's binding action
    /// land on the owning program's slot, and events before it land on
    /// slot 0 (see `telemetry::ProgramMetrics`).
    pub fn execute_attributed(
        &mut self,
        ft: &FieldTable,
        phv: &mut Phv,
        rec: &mut dyn Recorder,
        attr: Option<FieldId>,
    ) -> SimResult<()> {
        if let Some(f) = attr {
            rec.prog_ctx(phv.get(f) as u16);
        }
        let Stage { gress, index, tables, arrays, scratch, .. } = self;
        let (gress, index) = (*gress, *index);
        for table in tables.iter_mut() {
            // `lookup_slot` returns plain indices, so the matched action and
            // its data can be borrowed from the table while the SALU mutates
            // this stage's arrays — no clone, no allocation per hit.
            match table.lookup_slot(phv) {
                Some(r) => {
                    rec.table_lookup(gress, index, r.hit);
                    let table = &*table;
                    let action = &table.actions[r.action];
                    let data = table.data_of(r.src);
                    let effects = action.execute_scratch(ft, phv, data, arrays, scratch)?;
                    rec.action_executed(gress, index);
                    if effects.salu_read {
                        rec.salu_rmw(gress, index, effects.salu_wrote);
                    }
                }
                // A miss with no default action still consumed a lookup.
                None => rec.table_lookup(gress, index, false),
            }
        }
        Ok(())
    }
}

/// A full ingress or egress pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Gress.
    pub gress: Gress,
    /// Stages.
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// Construct with defaults appropriate to the type.
    pub fn new(gress: Gress, num_stages: usize, limits: StageLimits) -> Pipeline {
        Pipeline {
            gress,
            stages: (0..num_stages).map(|i| Stage::new(gress, i, limits)).collect(),
        }
    }

    /// Num stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Stage.
    pub fn stage(&self, idx: usize) -> SimResult<&Stage> {
        self.stages.get(idx).ok_or_else(|| {
            SimError::Config(format!("{} has no stage {idx}", self.gress))
        })
    }

    /// Stage mut.
    pub fn stage_mut(&mut self, idx: usize) -> SimResult<&mut Stage> {
        let gress = self.gress;
        self.stages.get_mut(idx).ok_or_else(|| {
            SimError::Config(format!("{gress} has no stage {idx}"))
        })
    }

    /// Run the PHV through every stage front-to-back.
    pub fn process(&mut self, ft: &FieldTable, phv: &mut Phv) -> SimResult<()> {
        self.process_with(ft, phv, &mut NopRecorder)
    }

    /// [`Pipeline::process`], reporting per-stage events into `rec`.
    pub fn process_with(
        &mut self,
        ft: &FieldTable,
        phv: &mut Phv,
        rec: &mut dyn Recorder,
    ) -> SimResult<()> {
        self.process_attributed(ft, phv, rec, None)
    }

    /// [`Pipeline::process_with`] with per-program attribution (see
    /// [`Stage::execute_attributed`]). `attr = None` is the plain path —
    /// one branch per stage, nothing else.
    pub fn process_attributed(
        &mut self,
        ft: &FieldTable,
        phv: &mut Phv,
        rec: &mut dyn Recorder,
        attr: Option<FieldId>,
    ) -> SimResult<()> {
        for stage in &mut self.stages {
            stage.execute_attributed(ft, phv, rec, attr)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, Operand, VliwOp};
    use crate::table::{EntryHandle, KeySpec, MatchKind, MatchValue, TableEntry};

    #[test]
    fn stages_execute_in_order() {
        let mut ft = FieldTable::new();
        let x = ft.register("meta.x", 32).unwrap();
        let mut pipe = Pipeline::new(Gress::Ingress, 3, StageLimits::default());
        // Stage 0 sets x=1; stage 1 adds 10 if x==1; stage 2 adds 100 if
        // x==11. Ordering matters: only front-to-back yields 111.
        let mk_table = |match_v: Option<u64>, add: u64| {
            let mut t = Table::new(
                format!("t{add}"),
                KeySpec::new(vec![(x, MatchKind::Exact)]),
                vec![ActionDef {
                    name: "add".into(),
                    ops: vec![VliwOp {
                        dst: x,
                        func: crate::action::AluFunc::Add,
                        a: Operand::Field(x),
                        b: Operand::Const(add),
                    }],
                    hash: None,
                    salu: None,
                }],
                4,
            );
            match match_v {
                Some(v) => t
                    .insert(
                        EntryHandle(add),
                        TableEntry { matches: vec![MatchValue::Exact(v)], priority: 0, action: 0, data: vec![] },
                    )
                    .unwrap(),
                None => t.set_default_action(0, vec![]),
            }
            t
        };
        pipe.stage_mut(0).unwrap().add_table(mk_table(Some(0), 1));
        pipe.stage_mut(1).unwrap().add_table(mk_table(Some(1), 10));
        pipe.stage_mut(2).unwrap().add_table(mk_table(Some(11), 100));
        let mut phv = Phv::new(&ft);
        phv.set(&ft, x, 0);
        pipe.process(&ft, &mut phv).unwrap();
        assert_eq!(phv.get(x), 111);
    }

    #[test]
    fn no_backward_state_access() {
        // A later stage cannot affect an earlier stage's array within one
        // pass: writes land in the owning stage only.
        let mut ft = FieldTable::new();
        let x = ft.register("meta.x", 32).unwrap();
        let mut pipe = Pipeline::new(Gress::Ingress, 2, StageLimits::default());
        pipe.stage_mut(0).unwrap().add_array(RegArray::new("a0", 4));
        pipe.stage_mut(1).unwrap().add_array(RegArray::new("a1", 4));
        let mut t = Table::new(
            "w",
            KeySpec::new(vec![(x, MatchKind::Ternary)]),
            vec![ActionDef {
                name: "write".into(),
                ops: vec![],
                hash: None,
                salu: Some(crate::action::SaluCall {
                    array: 0,
                    addr: Operand::Const(0),
                    operand: Operand::Const(7),
                    instr: crate::salu::SaluInstr::WRITE,
                    alt_instr: None,
                    select_flag: None,
                    output: None,
                }),
            }],
            4,
        );
        t.set_default_action(0, vec![]);
        pipe.stage_mut(1).unwrap().add_table(t);
        let mut phv = Phv::new(&ft);
        pipe.process(&ft, &mut phv).unwrap();
        assert_eq!(pipe.stage(0).unwrap().array(0).unwrap().read(0).unwrap(), 0);
        assert_eq!(pipe.stage(1).unwrap().array(0).unwrap().read(0).unwrap(), 7);
    }

    #[test]
    fn missing_indices_error() {
        let pipe = Pipeline::new(Gress::Egress, 1, StageLimits::default());
        assert!(pipe.stage(5).is_err());
        assert!(pipe.stage(0).unwrap().table(0).is_err());
        assert!(pipe.stage(0).unwrap().array(0).is_err());
    }
}
