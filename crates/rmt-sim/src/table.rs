//! Match-action tables.
//!
//! Each table declares a key (a list of PHV fields with a match kind per
//! field), a set of actions (see [`crate::action`]), and a capacity. Entries
//! are inserted and deleted one at a time — the simulator preserves RMT's
//! per-entry update atomicity, which is the foundation of the paper's
//! consistent-update argument (§4.3): a packet observes either the table
//! before or after any single entry write, never a torn state.

use crate::action::ActionDef;
use crate::error::{SimError, SimResult};
use crate::phv::{FieldId, Phv};

/// How one key field matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Exact.
    Exact,
    /// Ternary.
    Ternary,
    /// Lpm.
    Lpm,
    /// Range.
    Range,
}

/// The key specification of a table.
#[derive(Debug, Clone, Default)]
pub struct KeySpec {
    /// Fields.
    pub fields: Vec<(FieldId, MatchKind)>,
}

impl KeySpec {
    /// Construct with defaults appropriate to the type.
    pub fn new(fields: Vec<(FieldId, MatchKind)>) -> KeySpec {
        KeySpec { fields }
    }

    /// Whether any field requires TCAM (ternary or range).
    pub fn needs_tcam(&self) -> bool {
        self.fields
            .iter()
            .any(|(_, k)| matches!(k, MatchKind::Ternary | MatchKind::Lpm | MatchKind::Range))
    }
}

/// The match value of one key field in one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchValue {
    /// Exact.
    Exact(u64),
    /// Matches when `phv & mask == value & mask`. A mask of 0 is don't-care.
    /// Ternary.
    Ternary { value: u64, mask: u64 },
    /// Longest-prefix match on the top `prefix_len` bits of a `bits`-wide
    /// field.
    /// Lpm.
    Lpm { value: u64, prefix_len: u8, bits: u8 },
    /// Inclusive range.
    /// Range.
    Range { lo: u64, hi: u64 },
}

impl MatchValue {
    /// Don't-care ternary value.
    pub const ANY: MatchValue = MatchValue::Ternary { value: 0, mask: 0 };

    /// Matches.
    pub fn matches(&self, v: u64) -> bool {
        match *self {
            MatchValue::Exact(e) => v == e,
            MatchValue::Ternary { value, mask } => v & mask == value & mask,
            MatchValue::Lpm { value, prefix_len, bits } => {
                if prefix_len == 0 {
                    true
                } else {
                    let shift = u32::from(bits - prefix_len.min(bits));
                    (v >> shift) == (value >> shift)
                }
            }
            MatchValue::Range { lo, hi } => v >= lo && v <= hi,
        }
    }

    /// Specificity used for LPM ordering.
    fn lpm_len(&self) -> u8 {
        match *self {
            MatchValue::Lpm { prefix_len, .. } => prefix_len,
            _ => 0,
        }
    }
}

/// A stable handle to an inserted entry, unique per switch lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryHandle(pub u64);

/// One table entry.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// Matches.
    pub matches: Vec<MatchValue>,
    /// Higher priority wins among ternary tables; ties broken by insertion
    /// order (earlier wins), mirroring TCAM physical ordering.
    pub priority: i32,
    /// Action.
    pub action: usize,
    /// Immediate action data stored with the entry (operands).
    pub data: Vec<u64>,
}

#[derive(Debug, Clone)]
struct StoredEntry {
    handle: EntryHandle,
    seq: u64,
    entry: TableEntry,
}

/// A match-action table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Human-readable name.
    pub name: String,
    /// Key.
    pub key: KeySpec,
    /// Actions.
    pub actions: Vec<ActionDef>,
    /// Capacity.
    pub capacity: usize,
    /// Algorithmic TCAM: the table supports ternary matching but is backed
    /// by SRAM (a real Tofino capability), trading SRAM for TCAM blocks.
    /// Used by the wide, deep initialization-block filtering table.
    pub atcam: bool,
    /// Action executed on a miss, if any.
    pub default_action: Option<(usize, Vec<u64>)>,
    entries: Vec<StoredEntry>,
    next_seq: u64,
    /// Lookup counter for utilization statistics.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
}

/// Outcome of a table lookup.
#[derive(Debug, Clone, Copy)]
pub struct LookupResult<'a> {
    /// Action.
    pub action: &'a ActionDef,
    /// Data.
    pub data: &'a [u64],
    /// Hit.
    pub hit: bool,
}

impl Table {
    /// Construct with defaults appropriate to the type.
    pub fn new(name: impl Into<String>, key: KeySpec, actions: Vec<ActionDef>, capacity: usize) -> Table {
        Table {
            name: name.into(),
            key,
            actions,
            capacity,
            atcam: false,
            default_action: None,
            entries: Vec::new(),
            next_seq: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Mark this table as algorithmic TCAM (SRAM-backed ternary).
    pub fn with_atcam(mut self) -> Table {
        self.atcam = true;
        self
    }

    /// Set default action.
    pub fn set_default_action(&mut self, action: usize, data: Vec<u64>) {
        self.default_action = Some((action, data));
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free entries.
    pub fn free_entries(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Insert an entry atomically. `handle` must be globally unique (the
    /// switch's control plane allocates them).
    pub fn insert(&mut self, handle: EntryHandle, entry: TableEntry) -> SimResult<()> {
        if self.entries.len() >= self.capacity {
            return Err(SimError::TableFull { table: self.name.clone(), capacity: self.capacity });
        }
        if entry.matches.len() != self.key.fields.len() {
            return Err(SimError::KeyMismatch {
                table: self.name.clone(),
                expected: self.key.fields.len(),
                got: entry.matches.len(),
            });
        }
        if entry.action >= self.actions.len() {
            return Err(SimError::NoSuchAction { table: self.name.clone(), action: entry.action });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(StoredEntry { handle, seq, entry });
        // Keep entries ordered so lookup is a linear first-match scan:
        // priority desc, then LPM length desc, then insertion order asc.
        self.entries.sort_by(|a, b| {
            b.entry
                .priority
                .cmp(&a.entry.priority)
                .then_with(|| {
                    let la: u32 = a.entry.matches.iter().map(|m| u32::from(m.lpm_len())).sum();
                    let lb: u32 = b.entry.matches.iter().map(|m| u32::from(m.lpm_len())).sum();
                    lb.cmp(&la)
                })
                .then_with(|| a.seq.cmp(&b.seq))
        });
        Ok(())
    }

    /// Delete an entry atomically.
    pub fn delete(&mut self, handle: EntryHandle) -> SimResult<TableEntry> {
        match self.entries.iter().position(|e| e.handle == handle) {
            Some(pos) => Ok(self.entries.remove(pos).entry),
            None => Err(SimError::NoSuchEntry(handle.0)),
        }
    }

    /// Contains.
    pub fn contains(&self, handle: EntryHandle) -> bool {
        self.entries.iter().any(|e| e.handle == handle)
    }

    /// Look up the PHV against this table, returning the matched (or
    /// default) action. Also bumps hit/miss counters.
    pub fn lookup(&mut self, phv: &Phv) -> Option<LookupResult<'_>> {
        let mut found: Option<usize> = None;
        'entries: for (idx, stored) in self.entries.iter().enumerate() {
            for ((field, _kind), mv) in self.key.fields.iter().zip(&stored.entry.matches) {
                if !mv.matches(phv.get(*field)) {
                    continue 'entries;
                }
            }
            found = Some(idx);
            break;
        }
        match found {
            Some(idx) => {
                self.hits += 1;
                let e = &self.entries[idx].entry;
                Some(LookupResult { action: &self.actions[e.action], data: &e.data, hit: true })
            }
            None => {
                self.misses += 1;
                self.default_action.as_ref().map(|(a, data)| LookupResult {
                    action: &self.actions[*a],
                    data,
                    hit: false,
                })
            }
        }
    }

    /// Iterate entries (for resource accounting and debugging).
    pub fn iter_entries(&self) -> impl Iterator<Item = (EntryHandle, &TableEntry)> {
        self.entries.iter().map(|e| (e.handle, &e.entry))
    }

    /// Total key width in bits, used for TCAM/SRAM block accounting.
    pub fn key_bits(&self, field_table: &crate::phv::FieldTable) -> usize {
        self.key.fields.iter().map(|(f, _)| usize::from(field_table.spec(*f).bits)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionDef;
    use crate::phv::FieldTable;

    fn setup() -> (FieldTable, FieldId, FieldId) {
        let mut t = FieldTable::new();
        let a = t.register("meta.a", 32).unwrap();
        let b = t.register("meta.b", 16).unwrap();
        (t, a, b)
    }

    fn noop_actions(n: usize) -> Vec<ActionDef> {
        (0..n).map(|i| ActionDef::noop(format!("act{i}"))).collect()
    }

    #[test]
    fn exact_match() {
        let (ft, a, b) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact), (b, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5), MatchValue::Exact(7)], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 5);
        phv.set(&ft, b, 7);
        assert!(tbl.lookup(&phv).is_some());
        phv.set(&ft, b, 8);
        assert!(tbl.lookup(&phv).is_none());
        assert_eq!(tbl.hits, 1);
        assert_eq!(tbl.misses, 1);
    }

    #[test]
    fn ternary_priority_order() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        // Low-priority catch-all inserted first.
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::ANY], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry {
                matches: vec![MatchValue::Ternary { value: 0x10, mask: 0xf0 }],
                priority: 10,
                action: 1,
                data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x15);
        let r = tbl.lookup(&phv).unwrap();
        assert_eq!(r.action.name, "act1");
        phv.set(&ft, a, 0x25);
        let r = tbl.lookup(&phv).unwrap();
        assert_eq!(r.action.name, "act0");
    }

    #[test]
    fn tie_broken_by_insertion_order() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::ANY], priority: 5, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry { matches: vec![MatchValue::ANY], priority: 5, action: 1, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 1);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Lpm)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry {
                matches: vec![MatchValue::Lpm { value: 0x0a000000, prefix_len: 8, bits: 32 }],
                priority: 0,
                action: 0,
                data: vec![],
            },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry {
                matches: vec![MatchValue::Lpm { value: 0x0a010000, prefix_len: 16, bits: 32 }],
                priority: 0,
                action: 1,
                data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x0a010203);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
        phv.set(&ft, a, 0x0a020203);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
    }

    #[test]
    fn range_match() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Range)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry {
                matches: vec![MatchValue::Range { lo: 10, hi: 20 }],
                priority: 0,
                action: 0,
                data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        for (v, hit) in [(9u64, false), (10, true), (20, true), (21, false)] {
            phv.set(&ft, a, v);
            assert_eq!(tbl.lookup(&phv).is_some(), hit, "value {v}");
        }
    }

    #[test]
    fn capacity_enforced() {
        let (_, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        for i in 0..2 {
            tbl.insert(
                EntryHandle(i),
                TableEntry { matches: vec![MatchValue::Exact(i)], priority: 0, action: 0, data: vec![] },
            )
            .unwrap();
        }
        let err = tbl.insert(
            EntryHandle(9),
            TableEntry { matches: vec![MatchValue::Exact(9)], priority: 0, action: 0, data: vec![] },
        );
        assert!(matches!(err, Err(SimError::TableFull { .. })));
    }

    #[test]
    fn delete_restores_capacity_and_misses() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 5);
        assert!(tbl.lookup(&phv).is_some());
        tbl.delete(EntryHandle(1)).unwrap();
        assert!(tbl.lookup(&phv).is_none());
        assert_eq!(tbl.free_entries(), 2);
        assert!(matches!(tbl.delete(EntryHandle(1)), Err(SimError::NoSuchEntry(1))));
    }

    #[test]
    fn default_action_on_miss() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 2);
        tbl.set_default_action(1, vec![42]);
        let phv = Phv::new(&ft);
        let r = tbl.lookup(&phv).unwrap();
        assert!(!r.hit);
        assert_eq!(r.action.name, "act1");
        assert_eq!(r.data, &[42]);
    }

    #[test]
    fn key_arity_checked() {
        let (_, a, b) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact), (b, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        let err = tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 0, data: vec![] },
        );
        assert!(matches!(err, Err(SimError::KeyMismatch { .. })));
    }

    #[test]
    fn bad_action_id_rejected() {
        let (_, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        let err = tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 7, data: vec![] },
        );
        assert!(matches!(err, Err(SimError::NoSuchAction { .. })));
    }
}
