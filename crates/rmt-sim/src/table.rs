//! Match-action tables.
//!
//! Each table declares a key (a list of PHV fields with a match kind per
//! field), a set of actions (see [`crate::action`]), and a capacity. Entries
//! are inserted and deleted one at a time — the simulator preserves RMT's
//! per-entry update atomicity, which is the foundation of the paper's
//! consistent-update argument (§4.3): a packet observes either the table
//! before or after any single entry write, never a torn state.
//!
//! # Lookup fast paths
//!
//! Lookup mirrors the physical memories of a Tofino-class stage instead of
//! scanning entries linearly:
//!
//! * **all-exact keys** — a hash index from the key tuple to the winning
//!   entry, the software analogue of hash-addressed exact-match SRAM;
//! * **single-field LPM** — per-prefix-length hash buckets probed longest
//!   prefix first, the classic algorithmic-LPM decomposition;
//! * **ternary / range / mixed keys** — the priority-ordered scan, standing
//!   in for the TCAM's combinational priority resolution.
//!
//! Both indexes are maintained incrementally by `insert`/`delete`, so RMT's
//! per-entry update atomicity is untouched: every control-plane operation
//! leaves the index consistent with the entry store. Entries whose match
//! values do not conform to the declared key spec (or exotic shapes such as
//! mixed LPM widths or mixed LPM priorities) permanently degrade the table
//! to the ordered scan, which is always semantically authoritative — the
//! indexes are pure accelerations of it.

use crate::action::ActionDef;
use crate::error::{SimError, SimResult};
use crate::fxhash::FxHashMap;
use crate::phv::{FieldId, Phv};

/// How one key field matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Exact.
    Exact,
    /// Ternary.
    Ternary,
    /// Lpm.
    Lpm,
    /// Range.
    Range,
}

/// The key specification of a table.
#[derive(Debug, Clone, Default)]
pub struct KeySpec {
    /// Fields.
    pub fields: Vec<(FieldId, MatchKind)>,
}

impl KeySpec {
    /// Construct with defaults appropriate to the type.
    pub fn new(fields: Vec<(FieldId, MatchKind)>) -> KeySpec {
        KeySpec { fields }
    }

    /// Whether any field requires TCAM (ternary or range).
    pub fn needs_tcam(&self) -> bool {
        self.fields
            .iter()
            .any(|(_, k)| matches!(k, MatchKind::Ternary | MatchKind::Lpm | MatchKind::Range))
    }
}

/// The match value of one key field in one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchValue {
    /// Exact.
    Exact(u64),
    /// Matches when `phv & mask == value & mask`. A mask of 0 is don't-care.
    /// Ternary.
    Ternary { value: u64, mask: u64 },
    /// Longest-prefix match on the top `prefix_len` bits of a `bits`-wide
    /// field.
    /// Lpm.
    Lpm { value: u64, prefix_len: u8, bits: u8 },
    /// Inclusive range.
    /// Range.
    Range { lo: u64, hi: u64 },
}

impl MatchValue {
    /// Don't-care ternary value.
    pub const ANY: MatchValue = MatchValue::Ternary { value: 0, mask: 0 };

    /// Matches.
    pub fn matches(&self, v: u64) -> bool {
        match *self {
            MatchValue::Exact(e) => v == e,
            MatchValue::Ternary { value, mask } => v & mask == value & mask,
            MatchValue::Lpm { value, prefix_len, bits } => {
                if prefix_len == 0 {
                    true
                } else {
                    let shift = u32::from(bits - prefix_len.min(bits));
                    (v >> shift) == (value >> shift)
                }
            }
            MatchValue::Range { lo, hi } => v >= lo && v <= hi,
        }
    }

    /// Specificity used for LPM ordering.
    fn lpm_len(&self) -> u8 {
        match *self {
            MatchValue::Lpm { prefix_len, .. } => prefix_len,
            _ => 0,
        }
    }
}

/// The prefix key a value hashes to in an LPM bucket of `prefix_len` over a
/// `bits`-wide field: both stored values and probe values map through this,
/// so equality in the bucket is exactly [`MatchValue::matches`].
fn lpm_bucket_key(v: u64, prefix_len: u8, bits: u8) -> u64 {
    if prefix_len == 0 {
        0
    } else {
        v >> u32::from(bits - prefix_len.min(bits))
    }
}

/// A stable handle to an inserted entry, unique per switch lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryHandle(pub u64);

/// One table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// Matches.
    pub matches: Vec<MatchValue>,
    /// Higher priority wins among ternary tables; ties broken by insertion
    /// order (earlier wins), mirroring TCAM physical ordering.
    pub priority: i32,
    /// Action.
    pub action: usize,
    /// Immediate action data stored with the entry (operands).
    pub data: Vec<u64>,
}

impl TableEntry {
    fn lpm_sum(&self) -> u32 {
        self.matches.iter().map(|m| u32::from(m.lpm_len())).sum()
    }
}

#[derive(Debug, Clone)]
struct StoredEntry {
    handle: EntryHandle,
    seq: u64,
    entry: TableEntry,
}

impl StoredEntry {
    /// Total order of first-match precedence: priority desc, LPM length
    /// desc, insertion order asc. `seq` is unique, so the order is strict.
    fn rank(&self) -> (i64, i64, u64) {
        (
            -i64::from(self.entry.priority),
            -i64::from(self.entry.lpm_sum()),
            self.seq,
        )
    }
}

/// Exact-index keys wider than this fall back to the ordered scan (the
/// probe tuple lives on the stack during lookup).
const MAX_EXACT_KEY_FIELDS: usize = 16;

/// The per-prefix-length buckets of the single-field LPM index, sorted by
/// `prefix_len` descending so the first probe hit is the longest match.
#[derive(Debug, Clone, Default)]
struct LpmIndex {
    /// Field width shared by every entry; mixed widths degrade the table.
    bits: Option<u8>,
    /// Priority shared by every entry: the scan orders priority above
    /// prefix length, so a mixed-priority LPM table cannot use
    /// longest-prefix-first probing and degrades.
    priority: Option<i32>,
    buckets: Vec<(u8, FxHashMap<u64, u32>)>,
}

#[derive(Debug, Clone)]
enum Index {
    /// Key tuple → winning (first-match) slot.
    Exact(FxHashMap<Box<[u64]>, u32>),
    /// Single-field longest-prefix match.
    Lpm(LpmIndex),
    /// Priority-ordered scan only (TCAM/range/mixed keys, or degraded).
    Scan,
}

/// A match-action table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Human-readable name.
    pub name: String,
    /// Key.
    pub key: KeySpec,
    /// Actions.
    pub actions: Vec<ActionDef>,
    /// Capacity.
    pub capacity: usize,
    /// Algorithmic TCAM: the table supports ternary matching but is backed
    /// by SRAM (a real Tofino capability), trading SRAM for TCAM blocks.
    /// Used by the wide, deep initialization-block filtering table.
    pub atcam: bool,
    /// Action executed on a miss, if any.
    pub default_action: Option<(usize, Vec<u64>)>,
    /// Slab of entries; slots are stable across unrelated inserts/deletes,
    /// so the indexes and the handle map can reference them by id.
    slots: Vec<Option<StoredEntry>>,
    free_slots: Vec<u32>,
    /// Slot ids in first-match precedence order (see [`StoredEntry::rank`]),
    /// maintained by binary-search insertion.
    order: Vec<u32>,
    by_handle: FxHashMap<EntryHandle, u32>,
    index: Index,
    /// When false, lookups take the ordered scan even if an index is
    /// maintained — the measurement baseline for the indexed fast path.
    indexed: bool,
    next_seq: u64,
    /// Lookup counter for utilization statistics.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
}

/// Outcome of a table lookup.
#[derive(Debug, Clone, Copy)]
pub struct LookupResult<'a> {
    /// Action.
    pub action: &'a ActionDef,
    /// Data.
    pub data: &'a [u64],
    /// Hit.
    pub hit: bool,
}

/// Where a [`Table::lookup_slot`] hit found its action data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSrc {
    /// The matched entry's immediate data.
    Entry(u32),
    /// The default action's data.
    Default,
}

/// Outcome of a [`Table::lookup_slot`]: plain indices, so the caller can
/// split-borrow the action and data against its own mutable state without
/// cloning either (the zero-allocation dispatch path in
/// [`crate::pipeline::Stage::execute_with`]).
#[derive(Debug, Clone, Copy)]
pub struct SlotLookup {
    /// Index into [`Table::actions`].
    pub action: usize,
    /// Where the action data lives.
    pub src: DataSrc,
    /// Hit.
    pub hit: bool,
}

impl Table {
    /// Construct with defaults appropriate to the type.
    pub fn new(name: impl Into<String>, key: KeySpec, actions: Vec<ActionDef>, capacity: usize) -> Table {
        let index = Self::fresh_index(&key);
        Table {
            name: name.into(),
            key,
            actions,
            capacity,
            atcam: false,
            default_action: None,
            slots: Vec::new(),
            free_slots: Vec::new(),
            order: Vec::new(),
            by_handle: FxHashMap::default(),
            index,
            indexed: true,
            next_seq: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Mark this table as algorithmic TCAM (SRAM-backed ternary).
    pub fn with_atcam(mut self) -> Table {
        self.atcam = true;
        self
    }

    /// Set default action.
    pub fn set_default_action(&mut self, action: usize, data: Vec<u64>) {
        self.default_action = Some((action, data));
    }

    /// Force lookups onto the priority-ordered scan (`false`) or the
    /// maintained index (`true`, the default). The scan is the semantic
    /// reference; this knob exists to measure the index against it.
    pub fn set_indexed(&mut self, on: bool) {
        self.indexed = on;
    }

    /// Whether lookups currently take an index fast path (an index exists
    /// and is enabled).
    pub fn is_indexed(&self) -> bool {
        self.indexed && !matches!(self.index, Index::Scan)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Free entries.
    pub fn free_entries(&self) -> usize {
        self.capacity - self.order.len()
    }

    fn stored(&self, slot: u32) -> &StoredEntry {
        self.slots[slot as usize].as_ref().expect("live slot")
    }

    /// Drop the index permanently: the ordered scan remains authoritative.
    fn degrade(&mut self) {
        self.index = Index::Scan;
    }

    /// The empty index a fresh table of this key spec starts with.
    fn fresh_index(key: &KeySpec) -> Index {
        if key.fields.len() == 1 && key.fields[0].1 == MatchKind::Lpm {
            Index::Lpm(LpmIndex::default())
        } else if key.fields.len() <= MAX_EXACT_KEY_FIELDS
            && key.fields.iter().all(|(_, k)| *k == MatchKind::Exact)
        {
            Index::Exact(FxHashMap::default())
        } else {
            Index::Scan
        }
    }

    /// Exact-index key of a conforming entry, or `None` if the entry does
    /// not consist purely of `Exact` match values.
    fn exact_key_of(entry: &TableEntry) -> Option<Box<[u64]>> {
        entry
            .matches
            .iter()
            .map(|m| match *m {
                MatchValue::Exact(v) => Some(v),
                _ => None,
            })
            .collect()
    }

    /// Hook an already-stored entry into the index. Returns `false` if the
    /// entry cannot be indexed (the caller degrades).
    fn index_insert(&mut self, slot: u32) -> bool {
        let stored = self.slots[slot as usize].as_ref().expect("live slot");
        match &mut self.index {
            Index::Scan => true,
            Index::Exact(map) => {
                let Some(key) = Self::exact_key_of(&stored.entry) else {
                    return false;
                };
                let rank = stored.rank();
                match map.entry(key) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(slot);
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        // Duplicate key tuple: keep the first-match winner.
                        let cur = *o.get();
                        if rank < self.slots[cur as usize].as_ref().expect("live slot").rank() {
                            o.insert(slot);
                        }
                    }
                }
                true
            }
            Index::Lpm(lpm) => {
                let MatchValue::Lpm { value, prefix_len, bits } = stored.entry.matches[0] else {
                    return false;
                };
                if *lpm.bits.get_or_insert(bits) != bits {
                    return false;
                }
                if *lpm.priority.get_or_insert(stored.entry.priority) != stored.entry.priority {
                    return false;
                }
                let pos = match lpm
                    .buckets
                    .binary_search_by(|(len, _)| prefix_len.cmp(len))
                {
                    Ok(p) => p,
                    Err(p) => {
                        lpm.buckets.insert(p, (prefix_len, FxHashMap::default()));
                        p
                    }
                };
                // `seq` is monotonic, so among same-key duplicates the
                // already-stored entry is the earlier one and keeps winning.
                lpm.buckets[pos]
                    .1
                    .entry(lpm_bucket_key(value, prefix_len, bits))
                    .or_insert(slot);
                true
            }
        }
    }

    /// Unhook a just-removed entry from the index, promoting the next
    /// first-match winner for its key if one exists.
    fn index_remove(&mut self, slot: u32, entry: &TableEntry) {
        match &self.index {
            Index::Scan => {}
            Index::Exact(map) => {
                let Some(key) = Self::exact_key_of(entry) else {
                    return;
                };
                if map.get(&key) != Some(&slot) {
                    return;
                }
                // `order` is rank-sorted, so the first remaining entry with
                // this key tuple is the new winner.
                let next = self.order.iter().copied().find(|&s| {
                    Self::exact_key_of(&self.stored(s).entry).as_deref() == Some(&key[..])
                });
                let Index::Exact(map) = &mut self.index else { unreachable!() };
                match next {
                    Some(s) => {
                        map.insert(key, s);
                    }
                    None => {
                        map.remove(&key);
                    }
                }
            }
            Index::Lpm(lpm) => {
                let MatchValue::Lpm { value, prefix_len, bits } = entry.matches[0] else {
                    return;
                };
                let key = lpm_bucket_key(value, prefix_len, bits);
                let Some(pos) = lpm.buckets.iter().position(|(len, _)| *len == prefix_len) else {
                    return;
                };
                if lpm.buckets[pos].1.get(&key) != Some(&slot) {
                    return;
                }
                let next = self.order.iter().copied().find(|&s| {
                    matches!(
                        self.stored(s).entry.matches[0],
                        MatchValue::Lpm { value: v, prefix_len: p, bits: b }
                            if p == prefix_len && b == bits
                                && lpm_bucket_key(v, p, b) == key
                    )
                });
                let Index::Lpm(lpm) = &mut self.index else { unreachable!() };
                match next {
                    Some(s) => {
                        lpm.buckets[pos].1.insert(key, s);
                    }
                    None => {
                        lpm.buckets[pos].1.remove(&key);
                        if lpm.buckets[pos].1.is_empty() {
                            lpm.buckets.remove(pos);
                        }
                    }
                }
                if self.order.is_empty() {
                    // An emptied table may be refilled with a different
                    // width or priority; start afresh.
                    let Index::Lpm(lpm) = &mut self.index else { unreachable!() };
                    lpm.bits = None;
                    lpm.priority = None;
                }
            }
        }
    }

    /// Insert an entry atomically. `handle` must be globally unique (the
    /// switch's control plane allocates them).
    pub fn insert(&mut self, handle: EntryHandle, entry: TableEntry) -> SimResult<()> {
        if self.order.len() >= self.capacity {
            return Err(SimError::TableFull { table: self.name.clone(), capacity: self.capacity });
        }
        if entry.matches.len() != self.key.fields.len() {
            return Err(SimError::KeyMismatch {
                table: self.name.clone(),
                expected: self.key.fields.len(),
                got: entry.matches.len(),
            });
        }
        if entry.action >= self.actions.len() {
            return Err(SimError::NoSuchAction { table: self.name.clone(), action: entry.action });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let stored = StoredEntry { handle, seq, entry };
        let rank = stored.rank();
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(stored);
                s
            }
            None => {
                self.slots.push(Some(stored));
                u32::try_from(self.slots.len() - 1).expect("slot id fits u32")
            }
        };
        // Binary-search insertion into the rank-sorted order: O(log n)
        // compare + one shift, instead of re-sorting the whole table.
        let pos = self
            .order
            .binary_search_by(|&s| self.slots[s as usize].as_ref().expect("live slot").rank().cmp(&rank))
            .unwrap_err();
        self.order.insert(pos, slot);
        self.by_handle.insert(handle, slot);
        if !self.index_insert(slot) {
            self.degrade();
        }
        Ok(())
    }

    /// Delete an entry atomically.
    pub fn delete(&mut self, handle: EntryHandle) -> SimResult<TableEntry> {
        let Some(slot) = self.by_handle.remove(&handle) else {
            return Err(SimError::NoSuchEntry(handle.0));
        };
        let stored = self.slots[slot as usize].take().expect("live slot");
        let pos = self
            .order
            .iter()
            .position(|&s| s == slot)
            .expect("slot in order");
        self.order.remove(pos);
        self.index_remove(slot, &stored.entry);
        self.free_slots.push(slot);
        Ok(stored.entry)
    }

    /// Contains.
    pub fn contains(&self, handle: EntryHandle) -> bool {
        self.by_handle.contains_key(&handle)
    }

    /// Drop every entry at once (a device reset, not per-entry deletes).
    /// The index is rebuilt empty from the key spec, recovering from any
    /// degradation the wiped entries caused.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_slots.clear();
        self.order.clear();
        self.by_handle.clear();
        self.index = Self::fresh_index(&self.key);
    }

    /// The slot the indexed or scanned lookup selects, if any. Does not
    /// touch the hit/miss counters.
    fn find_slot(&self, phv: &Phv) -> Option<u32> {
        if self.indexed {
            match &self.index {
                Index::Exact(map) => {
                    if map.is_empty() {
                        return None;
                    }
                    let n = self.key.fields.len();
                    let mut probe = [0u64; MAX_EXACT_KEY_FIELDS];
                    for (i, (field, _)) in self.key.fields.iter().enumerate() {
                        probe[i] = phv.get(*field);
                    }
                    return map.get(&probe[..n]).copied();
                }
                Index::Lpm(lpm) => {
                    let v = phv.get(self.key.fields[0].0);
                    let bits = lpm.bits.unwrap_or(0);
                    return lpm
                        .buckets
                        .iter()
                        .find_map(|(len, map)| map.get(&lpm_bucket_key(v, *len, bits)).copied());
                }
                Index::Scan => {}
            }
        }
        'entries: for &slot in &self.order {
            let e = &self.stored(slot).entry;
            for ((field, _kind), mv) in self.key.fields.iter().zip(&e.matches) {
                if !mv.matches(phv.get(*field)) {
                    continue 'entries;
                }
            }
            return Some(slot);
        }
        None
    }

    /// Look up the PHV, returning plain indices into the table instead of
    /// borrows — the allocation-free dispatch interface. Bumps hit/miss
    /// counters exactly as [`Table::lookup`] does.
    pub fn lookup_slot(&mut self, phv: &Phv) -> Option<SlotLookup> {
        match self.find_slot(phv) {
            Some(slot) => {
                self.hits += 1;
                Some(SlotLookup {
                    action: self.stored(slot).entry.action,
                    src: DataSrc::Entry(slot),
                    hit: true,
                })
            }
            None => {
                self.misses += 1;
                self.default_action
                    .as_ref()
                    .map(|(a, _)| SlotLookup { action: *a, src: DataSrc::Default, hit: false })
            }
        }
    }

    /// The action data a [`SlotLookup`] refers to.
    pub fn data_of(&self, src: DataSrc) -> &[u64] {
        match src {
            DataSrc::Entry(slot) => &self.stored(slot).entry.data,
            DataSrc::Default => self
                .default_action
                .as_ref()
                .map(|(_, d)| d.as_slice())
                .unwrap_or(&[]),
        }
    }

    /// Look up the PHV against this table, returning the matched (or
    /// default) action. Also bumps hit/miss counters.
    pub fn lookup(&mut self, phv: &Phv) -> Option<LookupResult<'_>> {
        let r = self.lookup_slot(phv)?;
        Some(LookupResult {
            action: &self.actions[r.action],
            data: self.data_of(r.src),
            hit: r.hit,
        })
    }

    /// Iterate entries in first-match precedence order (for resource
    /// accounting and debugging).
    pub fn iter_entries(&self) -> impl Iterator<Item = (EntryHandle, &TableEntry)> {
        self.order.iter().map(|&s| {
            let e = self.stored(s);
            (e.handle, &e.entry)
        })
    }

    /// Total key width in bits, used for TCAM/SRAM block accounting.
    pub fn key_bits(&self, field_table: &crate::phv::FieldTable) -> usize {
        self.key.fields.iter().map(|(f, _)| usize::from(field_table.spec(*f).bits)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionDef;
    use crate::phv::FieldTable;

    fn setup() -> (FieldTable, FieldId, FieldId) {
        let mut t = FieldTable::new();
        let a = t.register("meta.a", 32).unwrap();
        let b = t.register("meta.b", 16).unwrap();
        (t, a, b)
    }

    fn noop_actions(n: usize) -> Vec<ActionDef> {
        (0..n).map(|i| ActionDef::noop(format!("act{i}"))).collect()
    }

    #[test]
    fn exact_match() {
        let (ft, a, b) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact), (b, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 8);
        assert!(tbl.is_indexed());
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5), MatchValue::Exact(7)], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 5);
        phv.set(&ft, b, 7);
        assert!(tbl.lookup(&phv).is_some());
        phv.set(&ft, b, 8);
        assert!(tbl.lookup(&phv).is_none());
        assert_eq!(tbl.hits, 1);
        assert_eq!(tbl.misses, 1);
    }

    #[test]
    fn ternary_priority_order() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        assert!(!tbl.is_indexed());
        // Low-priority catch-all inserted first.
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::ANY], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry {
                matches: vec![MatchValue::Ternary { value: 0x10, mask: 0xf0 }],
                priority: 10,
                action: 1,
                data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x15);
        let r = tbl.lookup(&phv).unwrap();
        assert_eq!(r.action.name, "act1");
        phv.set(&ft, a, 0x25);
        let r = tbl.lookup(&phv).unwrap();
        assert_eq!(r.action.name, "act0");
    }

    #[test]
    fn tie_broken_by_insertion_order() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::ANY], priority: 5, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry { matches: vec![MatchValue::ANY], priority: 5, action: 1, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 1);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Lpm)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        assert!(tbl.is_indexed());
        tbl.insert(
            EntryHandle(1),
            TableEntry {
                matches: vec![MatchValue::Lpm { value: 0x0a000000, prefix_len: 8, bits: 32 }],
                priority: 0,
                action: 0,
                data: vec![],
            },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry {
                matches: vec![MatchValue::Lpm { value: 0x0a010000, prefix_len: 16, bits: 32 }],
                priority: 0,
                action: 1,
                data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x0a010203);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
        phv.set(&ft, a, 0x0a020203);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
    }

    #[test]
    fn range_match() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Range)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry {
                matches: vec![MatchValue::Range { lo: 10, hi: 20 }],
                priority: 0,
                action: 0,
                data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        for (v, hit) in [(9u64, false), (10, true), (20, true), (21, false)] {
            phv.set(&ft, a, v);
            assert_eq!(tbl.lookup(&phv).is_some(), hit, "value {v}");
        }
    }

    #[test]
    fn capacity_enforced() {
        let (_, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        for i in 0..2 {
            tbl.insert(
                EntryHandle(i),
                TableEntry { matches: vec![MatchValue::Exact(i)], priority: 0, action: 0, data: vec![] },
            )
            .unwrap();
        }
        let err = tbl.insert(
            EntryHandle(9),
            TableEntry { matches: vec![MatchValue::Exact(9)], priority: 0, action: 0, data: vec![] },
        );
        assert!(matches!(err, Err(SimError::TableFull { .. })));
    }

    #[test]
    fn delete_restores_capacity_and_misses() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 5);
        assert!(tbl.lookup(&phv).is_some());
        tbl.delete(EntryHandle(1)).unwrap();
        assert!(tbl.lookup(&phv).is_none());
        assert_eq!(tbl.free_entries(), 2);
        assert!(matches!(tbl.delete(EntryHandle(1)), Err(SimError::NoSuchEntry(1))));
    }

    #[test]
    fn default_action_on_miss() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 2);
        tbl.set_default_action(1, vec![42]);
        let phv = Phv::new(&ft);
        let r = tbl.lookup(&phv).unwrap();
        assert!(!r.hit);
        assert_eq!(r.action.name, "act1");
        assert_eq!(r.data, &[42]);
    }

    #[test]
    fn key_arity_checked() {
        let (_, a, b) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact), (b, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        let err = tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 0, data: vec![] },
        );
        assert!(matches!(err, Err(SimError::KeyMismatch { .. })));
    }

    #[test]
    fn bad_action_id_rejected() {
        let (_, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        let err = tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 7, data: vec![] },
        );
        assert!(matches!(err, Err(SimError::NoSuchAction { .. })));
    }

    #[test]
    fn exact_duplicate_key_first_match_semantics() {
        // Two entries with the same key tuple: higher priority wins; among
        // equal priorities the earlier insertion wins — with and without
        // the index.
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(3), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 1, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(3),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 9, action: 2, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 5);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act2");
        // Deleting the winner promotes the next in precedence order.
        tbl.delete(EntryHandle(3)).unwrap();
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
        tbl.delete(EntryHandle(1)).unwrap();
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
        // Scan mode agrees at every step.
        tbl.set_indexed(false);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
    }

    #[test]
    fn lpm_winner_promoted_on_delete() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Lpm)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        let lpm16 = MatchValue::Lpm { value: 0x0a010000, prefix_len: 16, bits: 32 };
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![lpm16], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry { matches: vec![lpm16], priority: 0, action: 1, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x0a010203);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
        tbl.delete(EntryHandle(1)).unwrap();
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
        tbl.delete(EntryHandle(2)).unwrap();
        assert!(tbl.lookup(&phv).is_none());
    }

    #[test]
    fn mixed_priority_lpm_degrades_to_scan() {
        // Priority outranks prefix length in first-match order, so a
        // mixed-priority LPM table cannot probe longest-first: it must
        // degrade — and still answer correctly via the scan.
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Lpm)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry {
                matches: vec![MatchValue::Lpm { value: 0x0a000000, prefix_len: 8, bits: 32 }],
                priority: 10,
                action: 0,
                data: vec![],
            },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry {
                matches: vec![MatchValue::Lpm { value: 0x0a010000, prefix_len: 16, bits: 32 }],
                priority: 0,
                action: 1,
                data: vec![],
            },
        )
        .unwrap();
        assert!(!tbl.is_indexed());
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x0a010203);
        // Priority 10 /8 beats priority 0 /16.
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
    }

    #[test]
    fn nonconforming_entry_degrades_exact_index() {
        // A ternary match value slipped into an exact-key table: the index
        // cannot represent it, so the table degrades and the scan answers.
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry {
                matches: vec![MatchValue::Ternary { value: 0, mask: 0 }],
                priority: -1,
                action: 1,
                data: vec![],
            },
        )
        .unwrap();
        assert!(!tbl.is_indexed());
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 5);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
        phv.set(&ft, a, 6);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
    }

    #[test]
    fn scan_and_index_agree_after_churn() {
        let (ft, a, b) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact), (b, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 64);
        for i in 0..32u64 {
            tbl.insert(
                EntryHandle(i),
                TableEntry {
                    matches: vec![MatchValue::Exact(i % 8), MatchValue::Exact(i / 8)],
                    priority: (i % 3) as i32,
                    action: 0,
                    data: vec![i],
                },
            )
            .unwrap();
        }
        for i in (0..32u64).step_by(3) {
            tbl.delete(EntryHandle(i)).unwrap();
        }
        let mut phv = Phv::new(&ft);
        for va in 0..8u64 {
            for vb in 0..4u64 {
                phv.set(&ft, a, va);
                phv.set(&ft, b, vb);
                let indexed = tbl.lookup(&phv).map(|r| r.data.to_vec());
                tbl.set_indexed(false);
                let scanned = tbl.lookup(&phv).map(|r| r.data.to_vec());
                tbl.set_indexed(true);
                assert_eq!(indexed, scanned, "probe ({va},{vb})");
            }
        }
    }
}
