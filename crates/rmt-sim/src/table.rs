//! Match-action tables.
//!
//! Each table declares a key (a list of PHV fields with a match kind per
//! field), a set of actions (see [`crate::action`]), and a capacity. Entries
//! are inserted and deleted one at a time — the simulator preserves RMT's
//! per-entry update atomicity, which is the foundation of the paper's
//! consistent-update argument (§4.3): a packet observes either the table
//! before or after any single entry write, never a torn state.
//!
//! # Lookup fast paths
//!
//! Lookup mirrors the physical memories of a Tofino-class stage instead of
//! scanning entries linearly:
//!
//! * **all-exact keys** — a hash index from the key tuple to the winning
//!   entry, the software analogue of hash-addressed exact-match SRAM;
//! * **single-field LPM** — per-prefix-length hash buckets probed longest
//!   prefix first, the classic algorithmic-LPM decomposition;
//! * **ternary / range / mixed keys** — tuple-space search: entries are
//!   grouped by their effective per-field mask tuple, each group hashes
//!   the masked key, and lookup probes groups in best-possible-precedence
//!   order with early exit — the software analogue of an algorithmic TCAM
//!   (see `docs/PERF.md`, "Algorithmic TCAM"). Groups whose key contains a
//!   single range field keep a per-bucket sorted interval list probed by
//!   binary search; tables below [`TSS_SCAN_CUTOFF`] entries take the
//!   short scan, which beats any per-group hashing at that size.
//!
//! All indexes are maintained incrementally by `insert`/`delete`, so RMT's
//! per-entry update atomicity is untouched: every control-plane operation
//! leaves the index consistent with the entry store. Entries whose match
//! values do not conform to the declared key spec (or exotic shapes such as
//! mixed LPM widths or mixed LPM priorities) rebuild the table's index as
//! tuple-space search, which represents every match-value shape; only keys
//! wider than [`MAX_INDEX_KEY_FIELDS`] fall back to the bare ordered scan.
//! The priority-ordered scan remains the semantic authority — force it with
//! [`Table::set_indexed`]`(false)`; the indexes are pure accelerations of
//! it.
//!
//! An optional megaflow-style result cache ([`Table::set_result_cache`])
//! memoizes whole lookups under the union of all entry masks, invalidated
//! wholesale by a table-generation stamp on any entry mutation.

use crate::action::ActionDef;
use crate::error::{SimError, SimResult};
use crate::fxhash::FxHashMap;
use crate::phv::{FieldId, Phv};

/// How one key field matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Exact.
    Exact,
    /// Ternary.
    Ternary,
    /// Lpm.
    Lpm,
    /// Range.
    Range,
}

/// The key specification of a table.
#[derive(Debug, Clone, Default)]
pub struct KeySpec {
    /// Fields.
    pub fields: Vec<(FieldId, MatchKind)>,
}

impl KeySpec {
    /// Construct with defaults appropriate to the type.
    pub fn new(fields: Vec<(FieldId, MatchKind)>) -> KeySpec {
        KeySpec { fields }
    }

    /// Whether any field requires TCAM (ternary or range).
    pub fn needs_tcam(&self) -> bool {
        self.fields
            .iter()
            .any(|(_, k)| matches!(k, MatchKind::Ternary | MatchKind::Lpm | MatchKind::Range))
    }
}

/// The match value of one key field in one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchValue {
    /// Exact.
    Exact(u64),
    /// Matches when `phv & mask == value & mask`. A mask of 0 is don't-care.
    /// Ternary.
    Ternary { value: u64, mask: u64 },
    /// Longest-prefix match on the top `prefix_len` bits of a `bits`-wide
    /// field.
    /// Lpm.
    Lpm { value: u64, prefix_len: u8, bits: u8 },
    /// Inclusive range.
    /// Range.
    Range { lo: u64, hi: u64 },
}

impl MatchValue {
    /// Don't-care ternary value.
    pub const ANY: MatchValue = MatchValue::Ternary { value: 0, mask: 0 };

    /// Matches.
    pub fn matches(&self, v: u64) -> bool {
        match *self {
            MatchValue::Exact(e) => v == e,
            MatchValue::Ternary { value, mask } => v & mask == value & mask,
            MatchValue::Lpm { value, prefix_len, bits } => {
                if prefix_len == 0 {
                    true
                } else {
                    let shift = u32::from(bits - prefix_len.min(bits));
                    (v >> shift) == (value >> shift)
                }
            }
            MatchValue::Range { lo, hi } => v >= lo && v <= hi,
        }
    }

    /// Specificity used for LPM ordering.
    fn lpm_len(&self) -> u8 {
        match *self {
            MatchValue::Lpm { prefix_len, .. } => prefix_len,
            _ => 0,
        }
    }
}

/// The prefix key a value hashes to in an LPM bucket of `prefix_len` over a
/// `bits`-wide field: both stored values and probe values map through this,
/// so equality in the bucket is exactly [`MatchValue::matches`].
fn lpm_bucket_key(v: u64, prefix_len: u8, bits: u8) -> u64 {
    if prefix_len == 0 {
        0
    } else {
        v >> u32::from(bits - prefix_len.min(bits))
    }
}

/// A stable handle to an inserted entry, unique per switch lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryHandle(pub u64);

/// One table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// Matches.
    pub matches: Vec<MatchValue>,
    /// Higher priority wins among ternary tables; ties broken by insertion
    /// order (earlier wins), mirroring TCAM physical ordering.
    pub priority: i32,
    /// Action.
    pub action: usize,
    /// Immediate action data stored with the entry (operands).
    pub data: Vec<u64>,
}

impl TableEntry {
    fn lpm_sum(&self) -> u32 {
        self.matches.iter().map(|m| u32::from(m.lpm_len())).sum()
    }
}

#[derive(Debug, Clone)]
struct StoredEntry {
    handle: EntryHandle,
    seq: u64,
    entry: TableEntry,
}

/// First-match precedence rank (see [`StoredEntry::rank`]). Lower is
/// better; `seq` is unique per entry, so the order is strict.
type Rank = (i64, i64, u64);

impl StoredEntry {
    /// Total order of first-match precedence: priority desc, LPM length
    /// desc, insertion order asc. `seq` is unique, so the order is strict.
    fn rank(&self) -> Rank {
        (
            -i64::from(self.entry.priority),
            -i64::from(self.entry.lpm_sum()),
            self.seq,
        )
    }
}

/// Indexed keys wider than this fall back to the ordered scan: the exact
/// index, the tuple-space groups, and the result cache all build their
/// masked probe tuples in a fixed stack array of this size.
const MAX_INDEX_KEY_FIELDS: usize = 16;

/// Below this entry count the tuple-space index falls through to the
/// ordered scan: the RPB dispatch tables hold a handful of entries each,
/// and a few linear compares beat even one group-hash probe there (the
/// "when the scan still wins" case in `docs/PERF.md`).
const TSS_SCAN_CUTOFF: usize = 8;

/// Memoized probes the result cache holds before a wholesale flush.
const RESULT_CACHE_CAP: usize = 4096;

/// The effective per-field mask of one match value: the set of key bits
/// that decide the match. `Exact` is a full mask, `Ternary` carries its
/// own, `Lpm` is the top-`prefix_len` prefix mask; `Range` has none —
/// interval containment is not a masked-equality predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EffMask {
    Mask(u64),
    Range,
}

/// The masked-equality mask equivalent to an LPM match: `v` matches iff
/// `v & mask == value & mask` (the shift compare in
/// [`MatchValue::matches`] keeps every bit from `bits - prefix_len` up).
fn lpm_eff_mask(prefix_len: u8, bits: u8) -> u64 {
    if prefix_len == 0 {
        0
    } else {
        u64::MAX << u32::from(bits - prefix_len.min(bits))
    }
}

fn eff_mask(mv: &MatchValue) -> EffMask {
    match *mv {
        MatchValue::Exact(_) => EffMask::Mask(u64::MAX),
        MatchValue::Ternary { mask, .. } => EffMask::Mask(mask),
        MatchValue::Lpm { prefix_len, bits, .. } => EffMask::Mask(lpm_eff_mask(prefix_len, bits)),
        MatchValue::Range { .. } => EffMask::Range,
    }
}

/// The effective mask as a plain word for union-mask accumulation: a
/// range field constrains the whole word, so the cache must key on all of
/// it.
fn eff_mask_word(mv: &MatchValue) -> u64 {
    match eff_mask(mv) {
        EffMask::Mask(m) => m,
        EffMask::Range => u64::MAX,
    }
}

/// The representative value word the group mask applies to; ranges carry
/// no maskable word.
fn value_word(mv: &MatchValue) -> u64 {
    match *mv {
        MatchValue::Exact(v) => v,
        MatchValue::Ternary { value, .. } => value,
        MatchValue::Lpm { value, .. } => value,
        MatchValue::Range { .. } => 0,
    }
}

/// One member of a bucket's sorted interval list (single-range-field
/// groups): `max_hi` is the running maximum of `hi` over this and every
/// earlier interval, bounding the backward probe scan.
#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: u64,
    hi: u64,
    max_hi: u64,
    rank: Rank,
    slot: u32,
}

/// Recompute the `max_hi` prefix maxima after an interval insert/delete.
fn fix_max_hi(intervals: &mut [Interval]) {
    let mut m = 0u64;
    for it in intervals.iter_mut() {
        m = m.max(it.hi);
        it.max_hi = m;
    }
}

/// The entries of one tuple-space group that share a masked key.
#[derive(Debug, Clone, Default)]
struct TssBucket {
    /// `(rank, slot)` in rank order — the first member whose range fields
    /// also match the probe is the bucket's winner.
    members: Vec<(Rank, u32)>,
    /// Single-range-field groups only: the members re-sorted by `lo` for
    /// the binary-search interval probe. Maintained on insert/delete
    /// (control-plane cost), read-only during lookup.
    intervals: Vec<Interval>,
}

/// One tuple-space group: every entry whose per-field effective masks are
/// identical. Within the group a masked probe is an exact-match hash
/// lookup.
#[derive(Debug, Clone)]
struct TssGroup {
    /// Group identity: one effective mask per key field.
    id: Box<[EffMask]>,
    /// AND-masks for probe construction (`Range` fields contribute 0).
    key_masks: Box<[u64]>,
    /// Index of the single range field when exactly one exists (arming
    /// the interval probe); `None` for zero or two-plus range fields.
    single_range: Option<usize>,
    /// Number of range fields in the group's key.
    range_fields: usize,
    /// Best (minimum) rank over every member — the probe-order key.
    /// Ranks are unique per live entry, so group keys never tie.
    best_rank: Rank,
    /// Masked key tuple → members.
    buckets: FxHashMap<Box<[u64]>, TssBucket>,
    /// Member count.
    len: usize,
}

/// Tuple-space search over ternary/range/mixed keys: groups sorted by
/// `best_rank` ascending, so lookup can stop as soon as its current best
/// match outranks every remaining group's best possible member.
#[derive(Debug, Clone, Default)]
struct TssIndex {
    groups: Vec<TssGroup>,
}

/// Megaflow-style result cache: memoizes [`Table::find_slot`] keyed by
/// the probe masked with the union of every entry's effective mask. Any
/// two probes equal under the union mask match exactly the same entry
/// set, so they share one winner — one cache line covers a whole flow
/// aggregate, OVS-megaflow style.
#[derive(Debug, Clone)]
struct ResultCache {
    /// Per-field OR of every inserted entry's effective mask (`Range` ⇒
    /// full word). Only ever widens between wholesale flushes — a
    /// superset mask is always correct, merely less aggregating.
    union_mask: Vec<u64>,
    /// Masked probe tuple → the winning slot (`None` memoizes a miss).
    map: FxHashMap<Box<[u64]>, Option<u32>>,
    /// Table generation the map was filled at; a mismatch on lookup
    /// flushes the whole map — the wholesale megaflow invalidation.
    stamp: u64,
}

/// The per-prefix-length buckets of the single-field LPM index, sorted by
/// `prefix_len` descending so the first probe hit is the longest match.
#[derive(Debug, Clone, Default)]
struct LpmIndex {
    /// Field width shared by every entry; mixed widths degrade the table.
    bits: Option<u8>,
    /// Priority shared by every entry: the scan orders priority above
    /// prefix length, so a mixed-priority LPM table cannot use
    /// longest-prefix-first probing and degrades.
    priority: Option<i32>,
    buckets: Vec<(u8, FxHashMap<u64, u32>)>,
}

#[derive(Debug, Clone)]
enum Index {
    /// Key tuple → winning (first-match) slot.
    Exact(FxHashMap<Box<[u64]>, u32>),
    /// Single-field longest-prefix match.
    Lpm(LpmIndex),
    /// Tuple-space search (ternary/range/mixed keys, and any entry shape
    /// the Exact/Lpm indexes cannot represent).
    Tss(TssIndex),
    /// Priority-ordered scan only (keys too wide to probe on the stack).
    Scan,
}

/// A match-action table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Human-readable name.
    pub name: String,
    /// Key.
    pub key: KeySpec,
    /// Actions.
    pub actions: Vec<ActionDef>,
    /// Capacity.
    pub capacity: usize,
    /// Algorithmic TCAM: the table supports ternary matching but is backed
    /// by SRAM (a real Tofino capability), trading SRAM for TCAM blocks.
    /// Used by the wide, deep initialization-block filtering table.
    pub atcam: bool,
    /// Action executed on a miss, if any.
    pub default_action: Option<(usize, Vec<u64>)>,
    /// Slab of entries; slots are stable across unrelated inserts/deletes,
    /// so the indexes and the handle map can reference them by id.
    slots: Vec<Option<StoredEntry>>,
    free_slots: Vec<u32>,
    /// Slot ids in first-match precedence order (see [`StoredEntry::rank`]),
    /// maintained by binary-search insertion.
    order: Vec<u32>,
    by_handle: FxHashMap<EntryHandle, u32>,
    index: Index,
    /// When false, lookups take the ordered scan even if an index is
    /// maintained — the measurement baseline for the indexed fast path.
    /// Also bypasses the result cache: scan mode is the pure semantic
    /// authority.
    indexed: bool,
    /// Optional megaflow-style result cache ([`Table::set_result_cache`]).
    cache: Option<Box<ResultCache>>,
    /// Mutation generation: bumped by every insert/delete/clear; stamps
    /// (and thereby invalidates) the result cache.
    generation: u64,
    next_seq: u64,
    /// Lookup counter for utilization statistics.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Result-cache hits (probe answered without running a lookup).
    pub cache_hits: u64,
    /// Result-cache misses (lookup ran, result memoized).
    pub cache_misses: u64,
}

/// Outcome of a table lookup.
#[derive(Debug, Clone, Copy)]
pub struct LookupResult<'a> {
    /// Action.
    pub action: &'a ActionDef,
    /// Data.
    pub data: &'a [u64],
    /// Hit.
    pub hit: bool,
}

/// Where a [`Table::lookup_slot`] hit found its action data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSrc {
    /// The matched entry's immediate data.
    Entry(u32),
    /// The default action's data.
    Default,
}

/// Outcome of a [`Table::lookup_slot`]: plain indices, so the caller can
/// split-borrow the action and data against its own mutable state without
/// cloning either (the zero-allocation dispatch path in
/// [`crate::pipeline::Stage::execute_with`]).
#[derive(Debug, Clone, Copy)]
pub struct SlotLookup {
    /// Index into [`Table::actions`].
    pub action: usize,
    /// Where the action data lives.
    pub src: DataSrc,
    /// Hit.
    pub hit: bool,
}

impl Table {
    /// Construct with defaults appropriate to the type.
    pub fn new(name: impl Into<String>, key: KeySpec, actions: Vec<ActionDef>, capacity: usize) -> Table {
        let index = Self::fresh_index(&key);
        Table {
            name: name.into(),
            key,
            actions,
            capacity,
            atcam: false,
            default_action: None,
            slots: Vec::new(),
            free_slots: Vec::new(),
            order: Vec::new(),
            by_handle: FxHashMap::default(),
            index,
            indexed: true,
            cache: None,
            generation: 0,
            next_seq: 0,
            hits: 0,
            misses: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Mark this table as algorithmic TCAM (SRAM-backed ternary).
    pub fn with_atcam(mut self) -> Table {
        self.atcam = true;
        self
    }

    /// Set default action.
    pub fn set_default_action(&mut self, action: usize, data: Vec<u64>) {
        self.default_action = Some((action, data));
    }

    /// Force lookups onto the priority-ordered scan (`false`) or the
    /// maintained index (`true`, the default). The scan is the semantic
    /// reference; this knob exists to measure the index against it.
    pub fn set_indexed(&mut self, on: bool) {
        self.indexed = on;
    }

    /// Whether lookups currently take an index fast path (an index exists
    /// and is enabled).
    pub fn is_indexed(&self) -> bool {
        self.indexed && !matches!(self.index, Index::Scan)
    }

    /// Which structure serves indexed lookups: `"exact"`, `"lpm"`,
    /// `"tss"`, or `"scan"`.
    pub fn index_mode(&self) -> &'static str {
        match self.index {
            Index::Exact(_) => "exact",
            Index::Lpm(_) => "lpm",
            Index::Tss(_) => "tss",
            Index::Scan => "scan",
        }
    }

    /// Tuple-space mask-group count (0 unless the TSS index is active).
    pub fn tss_groups(&self) -> usize {
        match &self.index {
            Index::Tss(tss) => tss.groups.len(),
            _ => 0,
        }
    }

    /// Arm (`true`) or drop (`false`) the megaflow-style result cache.
    /// Arming computes the union mask from the live entries. The cache is
    /// bypassed whenever `set_indexed(false)` forces the authoritative
    /// scan; keys wider than [`MAX_INDEX_KEY_FIELDS`] cannot build their
    /// masked probe on the stack and the call is a no-op.
    pub fn set_result_cache(&mut self, on: bool) {
        if !on {
            self.cache = None;
            return;
        }
        if self.key.fields.len() > MAX_INDEX_KEY_FIELDS || self.cache.is_some() {
            return;
        }
        let mut union_mask = vec![0u64; self.key.fields.len()];
        for &slot in &self.order {
            let entry = &self.slots[slot as usize].as_ref().expect("live slot").entry;
            for (um, mv) in union_mask.iter_mut().zip(&entry.matches) {
                *um |= eff_mask_word(mv);
            }
        }
        self.cache = Some(Box::new(ResultCache {
            union_mask,
            map: FxHashMap::default(),
            stamp: self.generation,
        }));
    }

    /// Whether the megaflow result cache is armed.
    pub fn result_cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Memoized probes currently valid in the result cache (0 when the
    /// map is stale and pending its wholesale flush).
    pub fn result_cache_len(&self) -> usize {
        match &self.cache {
            Some(c) if c.stamp == self.generation => c.map.len(),
            _ => 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Free entries.
    pub fn free_entries(&self) -> usize {
        self.capacity - self.order.len()
    }

    fn stored(&self, slot: u32) -> &StoredEntry {
        self.slots[slot as usize].as_ref().expect("live slot")
    }

    /// The chosen index cannot represent this table's entries: rebuild it
    /// as tuple-space search, which indexes every match-value shape, or
    /// drop to the bare scan for keys too wide to probe on the stack. The
    /// ordered scan remains authoritative either way.
    fn degrade(&mut self) {
        if self.key.fields.len() > MAX_INDEX_KEY_FIELDS {
            self.index = Index::Scan;
            return;
        }
        let mut tss = TssIndex::default();
        for &slot in &self.order {
            let stored = self.slots[slot as usize].as_ref().expect("live slot");
            Self::tss_insert(&mut tss, &stored.entry, stored.rank(), slot);
        }
        self.index = Index::Tss(tss);
    }

    /// The empty index a fresh table of this key spec starts with.
    fn fresh_index(key: &KeySpec) -> Index {
        if key.fields.len() == 1 && key.fields[0].1 == MatchKind::Lpm {
            Index::Lpm(LpmIndex::default())
        } else if key.fields.len() > MAX_INDEX_KEY_FIELDS {
            Index::Scan
        } else if key.fields.iter().all(|(_, k)| *k == MatchKind::Exact) {
            Index::Exact(FxHashMap::default())
        } else {
            Index::Tss(TssIndex::default())
        }
    }

    /// Exact-index key of a conforming entry, or `None` if the entry does
    /// not consist purely of `Exact` match values.
    fn exact_key_of(entry: &TableEntry) -> Option<Box<[u64]>> {
        entry
            .matches
            .iter()
            .map(|m| match *m {
                MatchValue::Exact(v) => Some(v),
                _ => None,
            })
            .collect()
    }

    /// The masked key an entry hashes to within its tuple-space group.
    fn tss_key(entry: &TableEntry, key_masks: &[u64]) -> Box<[u64]> {
        entry
            .matches
            .iter()
            .zip(key_masks)
            .map(|(mv, m)| value_word(mv) & m)
            .collect()
    }

    /// Hook an entry into the tuple-space index, creating its mask group
    /// on first sight and keeping the group list sorted by best rank.
    /// Never fails: every match-value shape has an effective mask tuple.
    fn tss_insert(tss: &mut TssIndex, entry: &TableEntry, rank: Rank, slot: u32) {
        let id: Box<[EffMask]> = entry.matches.iter().map(eff_mask).collect();
        let gi = match tss.groups.iter().position(|g| g.id == id) {
            Some(gi) => gi,
            None => {
                let key_masks: Box<[u64]> = id
                    .iter()
                    .map(|em| match *em {
                        EffMask::Mask(m) => m,
                        EffMask::Range => 0,
                    })
                    .collect();
                let range_fields = id.iter().filter(|em| matches!(em, EffMask::Range)).count();
                let single_range = (range_fields == 1)
                    .then(|| id.iter().position(|em| matches!(em, EffMask::Range)))
                    .flatten();
                // Pushed with a sentinel worst rank; the reposition below
                // sorts it into place before this call returns.
                tss.groups.push(TssGroup {
                    id,
                    key_masks,
                    single_range,
                    range_fields,
                    best_rank: (i64::MAX, i64::MAX, u64::MAX),
                    buckets: FxHashMap::default(),
                    len: 0,
                });
                tss.groups.len() - 1
            }
        };
        let g = &mut tss.groups[gi];
        let key = Self::tss_key(entry, &g.key_masks);
        let bucket = g.buckets.entry(key).or_default();
        let pos = match bucket.members.binary_search(&(rank, slot)) {
            Ok(p) | Err(p) => p,
        };
        bucket.members.insert(pos, (rank, slot));
        if let Some(rf) = g.single_range {
            let MatchValue::Range { lo, hi } = entry.matches[rf] else {
                unreachable!("range effective mask implies a Range value");
            };
            let pos = bucket.intervals.partition_point(|it| (it.lo, it.rank) < (lo, rank));
            bucket.intervals.insert(pos, Interval { lo, hi, max_hi: 0, rank, slot });
            fix_max_hi(&mut bucket.intervals);
        }
        g.len += 1;
        if rank < g.best_rank {
            let mut g = tss.groups.remove(gi);
            g.best_rank = rank;
            let pos = tss.groups.partition_point(|o| o.best_rank < rank);
            tss.groups.insert(pos, g);
        }
    }

    /// Unhook a removed entry from the tuple-space index, dropping empty
    /// buckets/groups and re-sorting the group list if the group's best
    /// member left.
    fn tss_remove(tss: &mut TssIndex, stored: &StoredEntry, slot: u32) {
        let entry = &stored.entry;
        let rank = stored.rank();
        let id: Box<[EffMask]> = entry.matches.iter().map(eff_mask).collect();
        let Some(gi) = tss.groups.iter().position(|g| g.id == id) else {
            return;
        };
        let g = &mut tss.groups[gi];
        let key = Self::tss_key(entry, &g.key_masks);
        let Some(bucket) = g.buckets.get_mut(&key) else {
            return;
        };
        bucket.members.retain(|&(_, s)| s != slot);
        if g.single_range.is_some() {
            bucket.intervals.retain(|it| it.slot != slot);
            fix_max_hi(&mut bucket.intervals);
        }
        if bucket.members.is_empty() {
            g.buckets.remove(&key);
        }
        g.len -= 1;
        if g.len == 0 {
            tss.groups.remove(gi);
            return;
        }
        if rank == g.best_rank {
            let mut g = tss.groups.remove(gi);
            g.best_rank = g
                .buckets
                .values()
                .map(|b| b.members[0].0)
                .min()
                .expect("non-empty group has a best member");
            let pos = tss.groups.partition_point(|o| o.best_rank < g.best_rank);
            tss.groups.insert(pos, g);
        }
    }

    /// Hook an already-stored entry into the index. Returns `false` if the
    /// entry cannot be indexed (the caller degrades).
    fn index_insert(&mut self, slot: u32) -> bool {
        let stored = self.slots[slot as usize].as_ref().expect("live slot");
        match &mut self.index {
            Index::Scan => true,
            Index::Tss(tss) => {
                Self::tss_insert(tss, &stored.entry, stored.rank(), slot);
                true
            }
            Index::Exact(map) => {
                let Some(key) = Self::exact_key_of(&stored.entry) else {
                    return false;
                };
                let rank = stored.rank();
                match map.entry(key) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(slot);
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        // Duplicate key tuple: keep the first-match winner.
                        let cur = *o.get();
                        if rank < self.slots[cur as usize].as_ref().expect("live slot").rank() {
                            o.insert(slot);
                        }
                    }
                }
                true
            }
            Index::Lpm(lpm) => {
                let MatchValue::Lpm { value, prefix_len, bits } = stored.entry.matches[0] else {
                    return false;
                };
                if *lpm.bits.get_or_insert(bits) != bits {
                    return false;
                }
                if *lpm.priority.get_or_insert(stored.entry.priority) != stored.entry.priority {
                    return false;
                }
                let pos = match lpm
                    .buckets
                    .binary_search_by(|(len, _)| prefix_len.cmp(len))
                {
                    Ok(p) => p,
                    Err(p) => {
                        lpm.buckets.insert(p, (prefix_len, FxHashMap::default()));
                        p
                    }
                };
                // `seq` is monotonic, so among same-key duplicates the
                // already-stored entry is the earlier one and keeps winning.
                lpm.buckets[pos]
                    .1
                    .entry(lpm_bucket_key(value, prefix_len, bits))
                    .or_insert(slot);
                true
            }
        }
    }

    /// Unhook a just-removed entry from the index, promoting the next
    /// first-match winner for its key if one exists.
    fn index_remove(&mut self, slot: u32, stored: &StoredEntry) {
        let entry = &stored.entry;
        match &self.index {
            Index::Scan => {}
            Index::Tss(_) => {
                let Index::Tss(tss) = &mut self.index else { unreachable!() };
                Self::tss_remove(tss, stored, slot);
            }
            Index::Exact(map) => {
                let Some(key) = Self::exact_key_of(entry) else {
                    return;
                };
                if map.get(&key) != Some(&slot) {
                    return;
                }
                // `order` is rank-sorted, so the first remaining entry with
                // this key tuple is the new winner.
                let next = self.order.iter().copied().find(|&s| {
                    Self::exact_key_of(&self.stored(s).entry).as_deref() == Some(&key[..])
                });
                let Index::Exact(map) = &mut self.index else { unreachable!() };
                match next {
                    Some(s) => {
                        map.insert(key, s);
                    }
                    None => {
                        map.remove(&key);
                    }
                }
            }
            Index::Lpm(lpm) => {
                let MatchValue::Lpm { value, prefix_len, bits } = entry.matches[0] else {
                    return;
                };
                let key = lpm_bucket_key(value, prefix_len, bits);
                let Some(pos) = lpm.buckets.iter().position(|(len, _)| *len == prefix_len) else {
                    return;
                };
                if lpm.buckets[pos].1.get(&key) != Some(&slot) {
                    return;
                }
                let next = self.order.iter().copied().find(|&s| {
                    matches!(
                        self.stored(s).entry.matches[0],
                        MatchValue::Lpm { value: v, prefix_len: p, bits: b }
                            if p == prefix_len && b == bits
                                && lpm_bucket_key(v, p, b) == key
                    )
                });
                let Index::Lpm(lpm) = &mut self.index else { unreachable!() };
                match next {
                    Some(s) => {
                        lpm.buckets[pos].1.insert(key, s);
                    }
                    None => {
                        lpm.buckets[pos].1.remove(&key);
                        if lpm.buckets[pos].1.is_empty() {
                            lpm.buckets.remove(pos);
                        }
                    }
                }
                if self.order.is_empty() {
                    // An emptied table may be refilled with a different
                    // width or priority; start afresh.
                    let Index::Lpm(lpm) = &mut self.index else { unreachable!() };
                    lpm.bits = None;
                    lpm.priority = None;
                }
            }
        }
    }

    /// Insert an entry atomically. `handle` must be globally unique (the
    /// switch's control plane allocates them).
    pub fn insert(&mut self, handle: EntryHandle, entry: TableEntry) -> SimResult<()> {
        if self.order.len() >= self.capacity {
            return Err(SimError::TableFull { table: self.name.clone(), capacity: self.capacity });
        }
        if entry.matches.len() != self.key.fields.len() {
            return Err(SimError::KeyMismatch {
                table: self.name.clone(),
                expected: self.key.fields.len(),
                got: entry.matches.len(),
            });
        }
        if entry.action >= self.actions.len() {
            return Err(SimError::NoSuchAction { table: self.name.clone(), action: entry.action });
        }
        // Any mutation invalidates the result cache (generation stamp);
        // the union mask only ever widens between flushes, which is
        // always correct — see [`ResultCache`].
        self.generation += 1;
        if let Some(cache) = self.cache.as_mut() {
            for (um, mv) in cache.union_mask.iter_mut().zip(&entry.matches) {
                *um |= eff_mask_word(mv);
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let stored = StoredEntry { handle, seq, entry };
        let rank = stored.rank();
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(stored);
                s
            }
            None => {
                self.slots.push(Some(stored));
                u32::try_from(self.slots.len() - 1).expect("slot id fits u32")
            }
        };
        // Binary-search insertion into the rank-sorted order: O(log n)
        // compare + one shift, instead of re-sorting the whole table.
        let pos = self
            .order
            .binary_search_by(|&s| self.slots[s as usize].as_ref().expect("live slot").rank().cmp(&rank))
            .unwrap_err();
        self.order.insert(pos, slot);
        self.by_handle.insert(handle, slot);
        if !self.index_insert(slot) {
            self.degrade();
        }
        Ok(())
    }

    /// Delete an entry atomically.
    pub fn delete(&mut self, handle: EntryHandle) -> SimResult<TableEntry> {
        let Some(slot) = self.by_handle.remove(&handle) else {
            return Err(SimError::NoSuchEntry(handle.0));
        };
        self.generation += 1;
        let stored = self.slots[slot as usize].take().expect("live slot");
        let pos = self
            .order
            .iter()
            .position(|&s| s == slot)
            .expect("slot in order");
        self.order.remove(pos);
        self.index_remove(slot, &stored);
        self.free_slots.push(slot);
        Ok(stored.entry)
    }

    /// Contains.
    pub fn contains(&self, handle: EntryHandle) -> bool {
        self.by_handle.contains_key(&handle)
    }

    /// Drop every entry at once (a device reset, not per-entry deletes).
    /// The index is rebuilt empty from the key spec, recovering from any
    /// degradation the wiped entries caused.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_slots.clear();
        self.order.clear();
        self.by_handle.clear();
        self.index = Self::fresh_index(&self.key);
        self.generation += 1;
        if let Some(cache) = self.cache.as_mut() {
            // The only point the union mask may narrow again — the map is
            // flushed with it.
            cache.map.clear();
            cache.union_mask.fill(0);
            cache.stamp = self.generation;
        }
    }

    /// The slot the indexed or scanned lookup selects, if any. Does not
    /// touch the hit/miss counters.
    fn find_slot(&self, phv: &Phv) -> Option<u32> {
        if self.indexed {
            match &self.index {
                Index::Exact(map) => {
                    if map.is_empty() {
                        return None;
                    }
                    let n = self.key.fields.len();
                    let mut probe = [0u64; MAX_INDEX_KEY_FIELDS];
                    for (i, (field, _)) in self.key.fields.iter().enumerate() {
                        probe[i] = phv.get(*field);
                    }
                    return map.get(&probe[..n]).copied();
                }
                Index::Lpm(lpm) => {
                    let v = phv.get(self.key.fields[0].0);
                    let bits = lpm.bits.unwrap_or(0);
                    return lpm
                        .buckets
                        .iter()
                        .find_map(|(len, map)| map.get(&lpm_bucket_key(v, *len, bits)).copied());
                }
                Index::Tss(tss) => {
                    // Tiny tables fall through to the short scan — see
                    // [`TSS_SCAN_CUTOFF`].
                    if self.order.len() > TSS_SCAN_CUTOFF {
                        return self.tss_find(tss, phv);
                    }
                }
                Index::Scan => {}
            }
        }
        'entries: for &slot in &self.order {
            let e = &self.stored(slot).entry;
            for ((field, _kind), mv) in self.key.fields.iter().zip(&e.matches) {
                if !mv.matches(phv.get(*field)) {
                    continue 'entries;
                }
            }
            return Some(slot);
        }
        None
    }

    /// Tuple-space probe: groups in best-rank order, early exit once the
    /// current best match outranks every remaining group's best possible
    /// member, masked-key hash within each group, interval binary search
    /// where a single range field participates.
    fn tss_find(&self, tss: &TssIndex, phv: &Phv) -> Option<u32> {
        let n = self.key.fields.len();
        let mut vals = [0u64; MAX_INDEX_KEY_FIELDS];
        for (i, (field, _)) in self.key.fields.iter().enumerate() {
            vals[i] = phv.get(*field);
        }
        let mut probe = [0u64; MAX_INDEX_KEY_FIELDS];
        let mut best: Option<(Rank, u32)> = None;
        for g in &tss.groups {
            if let Some((rank, _)) = best {
                if rank < g.best_rank {
                    // Every remaining group's best member ranks worse.
                    break;
                }
            }
            for i in 0..n {
                probe[i] = vals[i] & g.key_masks[i];
            }
            let Some(bucket) = g.buckets.get(&probe[..n]) else {
                continue;
            };
            let found = if let Some(rf) = g.single_range {
                Self::probe_intervals(bucket, vals[rf])
            } else if g.range_fields == 0 {
                // Masked equality decided the match completely; members
                // are rank-sorted and buckets are never empty.
                Some(bucket.members[0])
            } else {
                // Two-plus range fields: rank-ordered bucket scan checking
                // the fields the masked key ignores.
                bucket.members.iter().copied().find(|&(_, slot)| {
                    let e = &self.stored(slot).entry;
                    g.id.iter().zip(&e.matches).enumerate().all(|(i, (em, mv))| {
                        !matches!(em, EffMask::Range) || mv.matches(vals[i])
                    })
                })
            };
            if let Some((rank, slot)) = found {
                if best.is_none() || rank < best.expect("checked").0 {
                    best = Some((rank, slot));
                }
            }
        }
        best.map(|(_, slot)| slot)
    }

    /// Best-ranked interval containing `v`: binary search to the last
    /// interval with `lo <= v`, then walk back while the prefix maxima
    /// say an enclosing interval can still exist.
    fn probe_intervals(bucket: &TssBucket, v: u64) -> Option<(Rank, u32)> {
        let end = bucket.intervals.partition_point(|it| it.lo <= v);
        let mut best: Option<(Rank, u32)> = None;
        for it in bucket.intervals[..end].iter().rev() {
            if it.max_hi < v {
                break;
            }
            if it.hi >= v && (best.is_none() || it.rank < best.expect("checked").0) {
                best = Some((it.rank, it.slot));
            }
        }
        best
    }

    /// [`Table::find_slot`] through the megaflow result cache: flush on a
    /// stale generation stamp, then answer repeat masked probes from the
    /// memo without touching the index or the scan.
    fn cached_find_slot(&mut self, phv: &Phv) -> Option<u32> {
        let n = self.key.fields.len();
        let mut probe = [0u64; MAX_INDEX_KEY_FIELDS];
        let cache = self.cache.as_mut().expect("cache armed");
        if cache.stamp != self.generation {
            cache.map.clear();
            cache.stamp = self.generation;
        }
        for (i, (field, _)) in self.key.fields.iter().enumerate() {
            probe[i] = phv.get(*field) & cache.union_mask[i];
        }
        if let Some(&memo) = cache.map.get(&probe[..n]) {
            self.cache_hits += 1;
            return memo;
        }
        let found = self.find_slot(phv);
        self.cache_misses += 1;
        let cache = self.cache.as_mut().expect("cache armed");
        if cache.map.len() >= RESULT_CACHE_CAP {
            cache.map.clear();
        }
        cache.map.insert(probe[..n].into(), found);
        found
    }

    /// Look up the PHV, returning plain indices into the table instead of
    /// borrows — the allocation-free dispatch interface. Bumps hit/miss
    /// counters exactly as [`Table::lookup`] does.
    pub fn lookup_slot(&mut self, phv: &Phv) -> Option<SlotLookup> {
        // The memo probe (union-mask + hash) only pays for itself past the
        // scan cutoff — below it the direct scan is already cheaper than a
        // hash, so tiny dispatch tables skip the cache even when armed.
        let found = if self.indexed && self.cache.is_some() && self.order.len() > TSS_SCAN_CUTOFF {
            self.cached_find_slot(phv)
        } else {
            self.find_slot(phv)
        };
        match found {
            Some(slot) => {
                self.hits += 1;
                Some(SlotLookup {
                    action: self.stored(slot).entry.action,
                    src: DataSrc::Entry(slot),
                    hit: true,
                })
            }
            None => {
                self.misses += 1;
                self.default_action
                    .as_ref()
                    .map(|(a, _)| SlotLookup { action: *a, src: DataSrc::Default, hit: false })
            }
        }
    }

    /// The action data a [`SlotLookup`] refers to.
    pub fn data_of(&self, src: DataSrc) -> &[u64] {
        match src {
            DataSrc::Entry(slot) => &self.stored(slot).entry.data,
            DataSrc::Default => self
                .default_action
                .as_ref()
                .map(|(_, d)| d.as_slice())
                .unwrap_or(&[]),
        }
    }

    /// Look up the PHV against this table, returning the matched (or
    /// default) action. Also bumps hit/miss counters.
    pub fn lookup(&mut self, phv: &Phv) -> Option<LookupResult<'_>> {
        let r = self.lookup_slot(phv)?;
        Some(LookupResult {
            action: &self.actions[r.action],
            data: self.data_of(r.src),
            hit: r.hit,
        })
    }

    /// Iterate entries in first-match precedence order (for resource
    /// accounting and debugging).
    pub fn iter_entries(&self) -> impl Iterator<Item = (EntryHandle, &TableEntry)> {
        self.order.iter().map(|&s| {
            let e = self.stored(s);
            (e.handle, &e.entry)
        })
    }

    /// Total key width in bits, used for TCAM/SRAM block accounting.
    pub fn key_bits(&self, field_table: &crate::phv::FieldTable) -> usize {
        self.key.fields.iter().map(|(f, _)| usize::from(field_table.spec(*f).bits)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionDef;
    use crate::phv::FieldTable;

    fn setup() -> (FieldTable, FieldId, FieldId) {
        let mut t = FieldTable::new();
        let a = t.register("meta.a", 32).unwrap();
        let b = t.register("meta.b", 16).unwrap();
        (t, a, b)
    }

    fn noop_actions(n: usize) -> Vec<ActionDef> {
        (0..n).map(|i| ActionDef::noop(format!("act{i}"))).collect()
    }

    #[test]
    fn exact_match() {
        let (ft, a, b) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact), (b, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 8);
        assert!(tbl.is_indexed());
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5), MatchValue::Exact(7)], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 5);
        phv.set(&ft, b, 7);
        assert!(tbl.lookup(&phv).is_some());
        phv.set(&ft, b, 8);
        assert!(tbl.lookup(&phv).is_none());
        assert_eq!(tbl.hits, 1);
        assert_eq!(tbl.misses, 1);
    }

    #[test]
    fn ternary_priority_order() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        assert!(tbl.is_indexed());
        assert_eq!(tbl.index_mode(), "tss");
        // Low-priority catch-all inserted first.
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::ANY], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry {
                matches: vec![MatchValue::Ternary { value: 0x10, mask: 0xf0 }],
                priority: 10,
                action: 1,
                data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x15);
        let r = tbl.lookup(&phv).unwrap();
        assert_eq!(r.action.name, "act1");
        phv.set(&ft, a, 0x25);
        let r = tbl.lookup(&phv).unwrap();
        assert_eq!(r.action.name, "act0");
    }

    #[test]
    fn tie_broken_by_insertion_order() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::ANY], priority: 5, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry { matches: vec![MatchValue::ANY], priority: 5, action: 1, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 1);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Lpm)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        assert!(tbl.is_indexed());
        tbl.insert(
            EntryHandle(1),
            TableEntry {
                matches: vec![MatchValue::Lpm { value: 0x0a000000, prefix_len: 8, bits: 32 }],
                priority: 0,
                action: 0,
                data: vec![],
            },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry {
                matches: vec![MatchValue::Lpm { value: 0x0a010000, prefix_len: 16, bits: 32 }],
                priority: 0,
                action: 1,
                data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x0a010203);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
        phv.set(&ft, a, 0x0a020203);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
    }

    #[test]
    fn range_match() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Range)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry {
                matches: vec![MatchValue::Range { lo: 10, hi: 20 }],
                priority: 0,
                action: 0,
                data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        for (v, hit) in [(9u64, false), (10, true), (20, true), (21, false)] {
            phv.set(&ft, a, v);
            assert_eq!(tbl.lookup(&phv).is_some(), hit, "value {v}");
        }
    }

    #[test]
    fn capacity_enforced() {
        let (_, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        for i in 0..2 {
            tbl.insert(
                EntryHandle(i),
                TableEntry { matches: vec![MatchValue::Exact(i)], priority: 0, action: 0, data: vec![] },
            )
            .unwrap();
        }
        let err = tbl.insert(
            EntryHandle(9),
            TableEntry { matches: vec![MatchValue::Exact(9)], priority: 0, action: 0, data: vec![] },
        );
        assert!(matches!(err, Err(SimError::TableFull { .. })));
    }

    #[test]
    fn delete_restores_capacity_and_misses() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 5);
        assert!(tbl.lookup(&phv).is_some());
        tbl.delete(EntryHandle(1)).unwrap();
        assert!(tbl.lookup(&phv).is_none());
        assert_eq!(tbl.free_entries(), 2);
        assert!(matches!(tbl.delete(EntryHandle(1)), Err(SimError::NoSuchEntry(1))));
    }

    #[test]
    fn default_action_on_miss() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 2);
        tbl.set_default_action(1, vec![42]);
        let phv = Phv::new(&ft);
        let r = tbl.lookup(&phv).unwrap();
        assert!(!r.hit);
        assert_eq!(r.action.name, "act1");
        assert_eq!(r.data, &[42]);
    }

    #[test]
    fn key_arity_checked() {
        let (_, a, b) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact), (b, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        let err = tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 0, data: vec![] },
        );
        assert!(matches!(err, Err(SimError::KeyMismatch { .. })));
    }

    #[test]
    fn bad_action_id_rejected() {
        let (_, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 2);
        let err = tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 7, data: vec![] },
        );
        assert!(matches!(err, Err(SimError::NoSuchAction { .. })));
    }

    #[test]
    fn exact_duplicate_key_first_match_semantics() {
        // Two entries with the same key tuple: higher priority wins; among
        // equal priorities the earlier insertion wins — with and without
        // the index.
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(3), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 1, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(3),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 9, action: 2, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 5);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act2");
        // Deleting the winner promotes the next in precedence order.
        tbl.delete(EntryHandle(3)).unwrap();
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
        tbl.delete(EntryHandle(1)).unwrap();
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
        // Scan mode agrees at every step.
        tbl.set_indexed(false);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
    }

    #[test]
    fn lpm_winner_promoted_on_delete() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Lpm)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        let lpm16 = MatchValue::Lpm { value: 0x0a010000, prefix_len: 16, bits: 32 };
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![lpm16], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry { matches: vec![lpm16], priority: 0, action: 1, data: vec![] },
        )
        .unwrap();
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x0a010203);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
        tbl.delete(EntryHandle(1)).unwrap();
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
        tbl.delete(EntryHandle(2)).unwrap();
        assert!(tbl.lookup(&phv).is_none());
    }

    #[test]
    fn mixed_priority_lpm_degrades_to_tss() {
        // Priority outranks prefix length in first-match order, so a
        // mixed-priority LPM table cannot probe longest-first: it rebuilds
        // as tuple-space search — and still answers correctly.
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Lpm)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry {
                matches: vec![MatchValue::Lpm { value: 0x0a000000, prefix_len: 8, bits: 32 }],
                priority: 10,
                action: 0,
                data: vec![],
            },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry {
                matches: vec![MatchValue::Lpm { value: 0x0a010000, prefix_len: 16, bits: 32 }],
                priority: 0,
                action: 1,
                data: vec![],
            },
        )
        .unwrap();
        assert!(tbl.is_indexed());
        assert_eq!(tbl.index_mode(), "tss");
        assert_eq!(tbl.tss_groups(), 2);
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x0a010203);
        // Priority 10 /8 beats priority 0 /16.
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
    }

    #[test]
    fn nonconforming_entry_degrades_exact_index() {
        // A ternary match value slipped into an exact-key table: the exact
        // index cannot represent it, so the table rebuilds as tuple-space
        // search and keeps answering correctly.
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 8);
        tbl.insert(
            EntryHandle(1),
            TableEntry { matches: vec![MatchValue::Exact(5)], priority: 0, action: 0, data: vec![] },
        )
        .unwrap();
        tbl.insert(
            EntryHandle(2),
            TableEntry {
                matches: vec![MatchValue::Ternary { value: 0, mask: 0 }],
                priority: -1,
                action: 1,
                data: vec![],
            },
        )
        .unwrap();
        assert!(tbl.is_indexed());
        assert_eq!(tbl.index_mode(), "tss");
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 5);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act0");
        phv.set(&ft, a, 6);
        assert_eq!(tbl.lookup(&phv).unwrap().action.name, "act1");
    }

    #[test]
    fn scan_and_index_agree_after_churn() {
        let (ft, a, b) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Exact), (b, MatchKind::Exact)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 64);
        for i in 0..32u64 {
            tbl.insert(
                EntryHandle(i),
                TableEntry {
                    matches: vec![MatchValue::Exact(i % 8), MatchValue::Exact(i / 8)],
                    priority: (i % 3) as i32,
                    action: 0,
                    data: vec![i],
                },
            )
            .unwrap();
        }
        for i in (0..32u64).step_by(3) {
            tbl.delete(EntryHandle(i)).unwrap();
        }
        let mut phv = Phv::new(&ft);
        for va in 0..8u64 {
            for vb in 0..4u64 {
                phv.set(&ft, a, va);
                phv.set(&ft, b, vb);
                let indexed = tbl.lookup(&phv).map(|r| r.data.to_vec());
                tbl.set_indexed(false);
                let scanned = tbl.lookup(&phv).map(|r| r.data.to_vec());
                tbl.set_indexed(true);
                assert_eq!(indexed, scanned, "probe ({va},{vb})");
            }
        }
    }

    /// Look up `phv` indexed and scanned and assert both agree; returns
    /// the matched entry data.
    fn both_ways(tbl: &mut Table, phv: &Phv, what: &str) -> Option<Vec<u64>> {
        let indexed = tbl.lookup(phv).map(|r| r.data.to_vec());
        tbl.set_indexed(false);
        let scanned = tbl.lookup(phv).map(|r| r.data.to_vec());
        tbl.set_indexed(true);
        assert_eq!(indexed, scanned, "{what}");
        indexed
    }

    #[test]
    fn tss_matches_scan_across_mask_groups() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("t", key, noop_actions(4), 64);
        // Four mask groups, six entries each — comfortably past the scan
        // cutoff, so lookups really take the tuple-space probe. Values
        // overlap across groups to exercise priority resolution.
        let masks = [0xffff_ff00u64, 0xffff_0000, 0xff00_0000, 0xffff_fff0];
        let shifts = [8u32, 16, 24, 4];
        for g in 0..4usize {
            for i in 0..6u64 {
                tbl.insert(
                    EntryHandle(g as u64 * 16 + i),
                    TableEntry {
                        matches: vec![MatchValue::Ternary { value: i << shifts[g], mask: masks[g] }],
                        priority: g as i32 * 2 + (i % 2) as i32,
                        action: g,
                        data: vec![g as u64, i],
                    },
                )
                .unwrap();
            }
        }
        assert_eq!(tbl.index_mode(), "tss");
        assert_eq!(tbl.tss_groups(), 4);
        let mut phv = Phv::new(&ft);
        for p in 0..200u64 {
            let v = p.wrapping_mul(0x9e37_79b9) & 0xffff_ffff;
            phv.set(&ft, a, v);
            both_ways(&mut tbl, &phv, &format!("probe {v:#x}"));
        }
        // Every entry's own value, with noise in unmasked low bits.
        for g in 0..4usize {
            for i in 0..6u64 {
                let v = (i << shifts[g]) | (masks[g] ^ u64::MAX) & 0x5;
                phv.set(&ft, a, v);
                assert!(both_ways(&mut tbl, &phv, &format!("group {g} entry {i}")).is_some());
            }
        }
    }

    #[test]
    fn tss_single_range_field_uses_interval_probe() {
        let (ft, a, b) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary), (b, MatchKind::Range)]);
        let mut tbl = Table::new("t", key, noop_actions(1), 64);
        // One mask group (shared ternary mask), overlapping port ranges —
        // the bucket keeps a lo-sorted interval list probed by binary
        // search.
        for i in 0..12u64 {
            tbl.insert(
                EntryHandle(i),
                TableEntry {
                    matches: vec![
                        MatchValue::Ternary { value: 0x10, mask: 0xff },
                        MatchValue::Range { lo: i * 50, hi: i * 50 + 120 },
                    ],
                    priority: (i % 3) as i32,
                    action: 0,
                    data: vec![i],
                },
            )
            .unwrap();
        }
        assert_eq!(tbl.tss_groups(), 1);
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x3210); // 0x10 under the 0xff mask
        for v in (0..800u64).step_by(7) {
            phv.set(&ft, b, v);
            both_ways(&mut tbl, &phv, &format!("port {v}"));
        }
        // A non-matching ternary part misses regardless of the range.
        phv.set(&ft, a, 0x11);
        phv.set(&ft, b, 60);
        assert!(both_ways(&mut tbl, &phv, "wrong ternary part").is_none());
    }

    #[test]
    fn tss_delete_and_reinsert_keeps_first_match_order() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("t", key, noop_actions(3), 32);
        // Filler group keeps the table above the scan cutoff.
        for i in 0..9u64 {
            tbl.insert(
                EntryHandle(100 + i),
                TableEntry {
                    matches: vec![MatchValue::Ternary { value: (i + 1) << 16, mask: 0xffff_0000 }],
                    priority: 0,
                    action: 0,
                    data: vec![100 + i],
                },
            )
            .unwrap();
        }
        // Three entries sharing one masked key in a second group:
        // duplicate priorities tie-break on insertion order.
        let shadow = MatchValue::Ternary { value: 0xab00, mask: 0xff00 };
        for (h, pri, act) in [(1u64, 5, 0usize), (2, 5, 1), (3, 9, 2)] {
            tbl.insert(
                EntryHandle(h),
                TableEntry { matches: vec![shadow], priority: pri, action: act, data: vec![h] },
            )
            .unwrap();
        }
        assert_eq!(tbl.tss_groups(), 2);
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0xab12);
        assert_eq!(both_ways(&mut tbl, &phv, "initial"), Some(vec![3]));
        // Deleting the group's best member recomputes its probe order.
        tbl.delete(EntryHandle(3)).unwrap();
        assert_eq!(both_ways(&mut tbl, &phv, "after delete best"), Some(vec![1]));
        tbl.delete(EntryHandle(1)).unwrap();
        assert_eq!(both_ways(&mut tbl, &phv, "after delete tie winner"), Some(vec![2]));
        // Delete-then-reinsert inside the same mask group.
        tbl.insert(
            EntryHandle(3),
            TableEntry { matches: vec![shadow], priority: 9, action: 2, data: vec![3] },
        )
        .unwrap();
        assert_eq!(both_ways(&mut tbl, &phv, "after reinsert"), Some(vec![3]));
        assert_eq!(tbl.tss_groups(), 2);
    }

    #[test]
    fn result_cache_memoizes_and_invalidates_on_mutation() {
        let (ft, a, _) = setup();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("t", key, noop_actions(2), 32);
        for i in 0..12u64 {
            tbl.insert(
                EntryHandle(i),
                TableEntry {
                    matches: vec![MatchValue::Ternary { value: i << 8, mask: 0xff00 }],
                    priority: 0,
                    action: 0,
                    data: vec![i],
                },
            )
            .unwrap();
        }
        tbl.set_result_cache(true);
        assert!(tbl.result_cache_enabled());
        let mut phv = Phv::new(&ft);
        phv.set(&ft, a, 0x0305);
        assert_eq!(tbl.lookup(&phv).unwrap().data, &[3]);
        assert_eq!((tbl.cache_hits, tbl.cache_misses), (0, 1));
        // Different noise bits, same masked probe: one megaflow line.
        phv.set(&ft, a, 0x03ff);
        assert_eq!(tbl.lookup(&phv).unwrap().data, &[3]);
        assert_eq!((tbl.cache_hits, tbl.cache_misses), (1, 1));
        assert_eq!(tbl.result_cache_len(), 1);
        // A higher-priority shadow entry takes effect immediately: the
        // generation stamp flushes the memo wholesale.
        tbl.insert(
            EntryHandle(99),
            TableEntry {
                matches: vec![MatchValue::Ternary { value: 0x0300, mask: 0xff00 }],
                priority: 7,
                action: 1,
                data: vec![99],
            },
        )
        .unwrap();
        assert_eq!(tbl.result_cache_len(), 0);
        assert_eq!(tbl.lookup(&phv).unwrap().data, &[99]);
        tbl.delete(EntryHandle(99)).unwrap();
        assert_eq!(tbl.lookup(&phv).unwrap().data, &[3]);
        // Misses are memoized too.
        phv.set(&ft, a, 0xdd05);
        assert!(tbl.lookup(&phv).is_none());
        let misses = tbl.cache_misses;
        assert!(tbl.lookup(&phv).is_none());
        assert_eq!(tbl.cache_misses, misses);
        // Scan mode bypasses the cache entirely: the authority stays pure.
        tbl.set_indexed(false);
        let (h, m) = (tbl.cache_hits, tbl.cache_misses);
        phv.set(&ft, a, 0x0305);
        assert_eq!(tbl.lookup(&phv).unwrap().data, &[3]);
        assert_eq!((tbl.cache_hits, tbl.cache_misses), (h, m));
    }
}
