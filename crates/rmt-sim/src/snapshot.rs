//! Epoch-consistent control-state publication for multi-worker data
//! planes.
//!
//! The parallel engine (see [`crate::parallel`]) runs one [`Switch`] clone
//! per worker thread. Control-plane updates keep flowing through the
//! master switch exactly as before; what workers need is a way to observe
//! those updates (a) without ever stalling on the control plane and (b)
//! without ever seeing a batch half-applied. Both come from publishing
//! each applied batch as one immutable **delta**:
//!
//! * [`ControlChannel::apply_batch*`](crate::control::ControlChannel)
//!   collects the operations that actually landed on the device — the
//!   applied prefix under fail-stop, including any mid-batch device
//!   reset — and publishes them as a single [`BatchDelta`] through a
//!   generation-stamped [`crossbeam::rcu::RcuCell`]. The whole batch
//!   becomes visible in one atomic pointer swap: torn visibility is
//!   structurally impossible.
//! * Each worker holds a [`SnapshotReader`]. Polling costs one atomic
//!   load when nothing changed (the per-packet steady state); when the
//!   generation moved, the reader catches up on every delta it missed, in
//!   publication order, and applies them to its switch clone between
//!   packets — so per-entry atomicity and the epoch-before-batch
//!   invariant carry over to every worker verbatim.
//!
//! Reclamation is RCU-shaped: a superseded snapshot lives until the last
//! reader drops its `Arc`, then frees on that reader's thread.
//!
//! [`Switch`]: crate::switch::Switch

use crate::switch::{ArrayRef, TableRef};
use crate::table::{EntryHandle, TableEntry};
use crossbeam::rcu::{RcuCell, RcuReader};
use std::sync::Arc;

/// One control operation as it *landed* on the master device. Unlike
/// [`ControlOp`](crate::switch::ControlOp), inserts carry the handle the
/// master allocated, so a worker replaying the delta stays
/// handle-compatible with later deletes; reads are omitted (they do not
/// change device state).
#[derive(Debug, Clone)]
pub enum AppliedOp {
    /// An entry landed under the master-assigned handle.
    Insert {
        /// Table.
        table: TableRef,
        /// Master-assigned handle.
        handle: EntryHandle,
        /// The entry.
        entry: TableEntry,
    },
    /// An entry was deleted.
    Delete {
        /// Table.
        table: TableRef,
        /// Handle.
        handle: EntryHandle,
    },
    /// A register bucket was written.
    WriteReg {
        /// Array.
        array: ArrayRef,
        /// Address.
        addr: u32,
        /// Value.
        value: u32,
    },
    /// A register range was zeroed.
    ResetRegRange {
        /// Array.
        array: ArrayRef,
        /// Start.
        start: u32,
        /// Length.
        len: u32,
    },
    /// The device reset mid-batch (a [`FaultKind::DeviceReset`] landed at
    /// this position in the op sequence).
    ///
    /// [`FaultKind::DeviceReset`]: crate::fault::FaultKind::DeviceReset
    Reset,
}

/// Everything one channel batch changed on the device, published
/// atomically.
#[derive(Debug, Clone)]
pub struct BatchDelta {
    /// Publication generation, 1-based and contiguous.
    pub generation: u64,
    /// Telemetry epoch active when the batch applied (the controller
    /// bumps the epoch *before* the batch, so adopting `ops` and `epoch`
    /// together preserves epoch-before-batch on every worker).
    pub epoch: u64,
    /// The operations that landed, in device order.
    pub ops: Vec<AppliedOp>,
}

/// One link in the published history: the delta plus everything published
/// before it. The chain is persistent — publishing prepends a node and
/// swaps the head, so a publish costs O(1) however long the campaign has
/// run (an earlier `Vec`-of-history design recloned the whole log per
/// publish, which tripled deploy latency in the bench probe).
#[derive(Debug)]
struct Node {
    delta: Arc<BatchDelta>,
    prev: Option<Arc<Node>>,
}

impl Drop for Node {
    /// Unlink iteratively: a seeded campaign can publish thousands of
    /// deltas, and the default recursive drop of a chain that long would
    /// blow the stack.
    fn drop(&mut self) {
        let mut prev = self.prev.take();
        while let Some(node) = prev {
            match Arc::try_unwrap(node) {
                Ok(mut n) => prev = n.prev.take(),
                Err(_) => break,
            }
        }
    }
}

/// The published history, as seen through the RCU cell: the newest delta
/// with the chain of its predecessors hanging off it.
#[derive(Debug, Clone, Default)]
pub struct DeltaLog {
    head: Option<Arc<Node>>,
}

impl DeltaLog {
    /// The latest published generation (0 = nothing published).
    pub fn generation(&self) -> u64 {
        self.head.as_ref().map_or(0, |n| n.delta.generation)
    }

    /// Deltas newer than `after`, oldest first.
    pub fn since(&self, after: u64) -> Vec<Arc<BatchDelta>> {
        let mut missed = Vec::new();
        let mut cursor = self.head.as_deref();
        while let Some(node) = cursor {
            if node.delta.generation <= after {
                break;
            }
            missed.push(Arc::clone(&node.delta));
            cursor = node.prev.as_deref();
        }
        missed.reverse();
        missed
    }
}

/// The writer side, owned by the control channel.
#[derive(Debug, Clone)]
pub struct SnapshotPublisher {
    cell: Arc<RcuCell<DeltaLog>>,
    head: Option<Arc<Node>>,
}

impl Default for SnapshotPublisher {
    fn default() -> Self {
        SnapshotPublisher::new()
    }
}

impl SnapshotPublisher {
    /// A publisher at generation 0 (nothing published).
    pub fn new() -> SnapshotPublisher {
        SnapshotPublisher { cell: Arc::new(RcuCell::default()), head: None }
    }

    /// Publish one batch's applied operations; the whole delta becomes
    /// visible to every reader in a single generation bump. Returns the
    /// new generation.
    pub fn publish(&mut self, epoch: u64, ops: Vec<AppliedOp>) -> u64 {
        let generation = self.head.as_ref().map_or(0, |n| n.delta.generation) + 1;
        let delta = Arc::new(BatchDelta { generation, epoch, ops });
        self.head = Some(Arc::new(Node { delta, prev: self.head.take() }));
        self.cell.publish(DeltaLog { head: self.head.clone() })
    }

    /// The latest published generation.
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }

    /// Subscribe a reader positioned at the *current* generation: it will
    /// observe only deltas published after this call. Fork worker switches
    /// from the master at the same moment so nothing is missed or doubled.
    pub fn subscribe(&self) -> SnapshotReader {
        let reader = RcuReader::new(Arc::clone(&self.cell));
        let applied = reader.current().generation();
        SnapshotReader { reader, applied }
    }
}

/// A worker's cursor into the published delta stream.
#[derive(Debug)]
pub struct SnapshotReader {
    reader: RcuReader<DeltaLog>,
    applied: u64,
}

impl SnapshotReader {
    /// Deltas published since the last poll, oldest first. Costs one
    /// atomic load (and allocates nothing) when the answer is "none" —
    /// cheap enough to call per packet.
    pub fn poll(&mut self) -> Vec<Arc<BatchDelta>> {
        self.reader.refresh();
        let log = self.reader.current();
        if log.generation() == self.applied {
            return Vec::new();
        }
        let missed = log.since(self.applied);
        self.applied = log.generation();
        missed
    }

    /// The generation this reader has consumed up to.
    pub fn generation(&self) -> u64 {
        self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_ops(n: usize) -> Vec<AppliedOp> {
        (0..n).map(|_| AppliedOp::Reset).collect()
    }

    #[test]
    fn publish_and_poll_are_batch_granular() {
        let mut p = SnapshotPublisher::new();
        let mut r = p.subscribe();
        assert!(r.poll().is_empty(), "nothing published yet");
        assert_eq!(p.publish(3, delta_ops(2)), 1);
        assert_eq!(p.publish(4, delta_ops(1)), 2);
        let got = r.poll();
        assert_eq!(got.len(), 2, "catches up on every missed delta");
        assert_eq!(got[0].generation, 1);
        assert_eq!(got[0].epoch, 3);
        assert_eq!(got[0].ops.len(), 2);
        assert_eq!(got[1].generation, 2);
        assert!(r.poll().is_empty(), "consumed");
        assert_eq!(r.generation(), 2);
    }

    #[test]
    fn late_subscriber_skips_history() {
        let mut p = SnapshotPublisher::new();
        p.publish(1, delta_ops(1));
        let mut r = p.subscribe();
        assert!(r.poll().is_empty(), "subscribed after the publish");
        p.publish(2, delta_ops(1));
        assert_eq!(r.poll().len(), 1);
    }
}
