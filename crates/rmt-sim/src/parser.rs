//! The programmable parser and deparser.
//!
//! RMT parsers are finite state machines: each state extracts one header
//! into the PHV and selects the next state from a field of that header.
//! Following §4.1.1 of the paper, the simulator maintains a *parse-path
//! bitmap* in the PHV with one bit per header type; the initialization block
//! keys its filtering tables on this bitmap.
//!
//! The parse state machine is fixed at provisioning time — the paper's
//! "Header Parsing" limitation (§7) is faithfully reproduced: runtime
//! programs can only see fields the compiled parser extracts.
//!
//! ## Deparsing
//!
//! Like real RMT hardware, the deparser *rebuilds* each header from the PHV
//! rather than patching the original bytes: every header type carries a
//! 1-bit *presence* field, set by the parser and settable/clearable by
//! actions. This is what lets the P4runpro recirculation block push its
//! state-carrying header for another pipeline pass (§4.1.3) and strip it
//! before the packet leaves the switch. Consequently every header must
//! declare *full bit coverage* — its fields must tile the header exactly —
//! which [`HeaderDef::validate_coverage`] checks at provisioning time.

use crate::error::{SimError, SimResult};
use crate::phv::{FieldId, FieldTable, Phv};

/// Index of a registered header type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeaderTypeId(pub usize);

/// One extractable field within a header.
#[derive(Debug, Clone)]
pub struct HeaderField {
    /// Field.
    pub field: FieldId,
    /// Offset of the field's most significant bit from the start of the
    /// header, big-endian bit order.
    pub bit_offset: u16,
    /// Bits.
    pub bits: u8,
}

/// A fixed-length header type.
#[derive(Debug, Clone)]
pub struct HeaderDef {
    /// Human-readable name.
    pub name: String,
    /// Len bytes.
    pub len_bytes: usize,
    /// Fields.
    pub fields: Vec<HeaderField>,
    /// 1-bit PHV field: non-zero ⇒ this header is emitted by the deparser.
    pub presence: FieldId,
    /// Byte offset (relative to header start) of an RFC 1071 checksum over
    /// the whole header, recomputed at deparse time. Used by IPv4.
    pub checksum_at: Option<usize>,
    /// This header's bit in the parse-path bitmap.
    pub bitmap_bit: u8,
}

impl HeaderDef {
    /// Check that the declared fields tile the header exactly: no gaps, no
    /// overlaps, total width = `len_bytes * 8`. Required because the
    /// deparser reconstructs headers purely from the PHV.
    pub fn validate_coverage(&self) -> SimResult<()> {
        let mut covered = vec![false; self.len_bytes * 8];
        for hf in &self.fields {
            for i in 0..u16::from(hf.bits) {
                let bit = usize::from(hf.bit_offset + i);
                if bit >= covered.len() {
                    return Err(SimError::Config(format!(
                        "header `{}`: field bits exceed header length",
                        self.name
                    )));
                }
                if covered[bit] {
                    return Err(SimError::Config(format!(
                        "header `{}`: overlapping fields at bit {bit}",
                        self.name
                    )));
                }
                covered[bit] = true;
            }
        }
        if covered.iter().any(|c| !c) {
            return Err(SimError::Config(format!(
                "header `{}`: fields do not cover every bit",
                self.name
            )));
        }
        Ok(())
    }
}

/// Where a parse transition goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextState {
    /// Accept.
    Accept,
    /// Reject.
    Reject,
    /// State.
    State(usize),
}

/// One parse state: extract `header`, then select on a field.
#[derive(Debug, Clone)]
pub struct ParseState {
    /// Header.
    pub header: HeaderTypeId,
    /// Field to select the next state on; `None` means unconditionally
    /// `default`.
    pub select: Option<FieldId>,
    /// `(value, mask, next)` transitions, first match wins.
    pub transitions: Vec<(u64, u64, NextState)>,
    /// Default.
    pub default: NextState,
}

/// Result of parsing one frame.
///
/// Deliberately `Copy`-cheap: `parse` runs once per pipeline pass, so the
/// result carries only the bitmap and payload offset (the set of parsed
/// headers is recoverable from the bitmap) rather than a heap-allocated
/// header list.
#[derive(Debug, Clone, Copy)]
pub struct ParseResult {
    /// Parse-path bitmap: bit `bitmap_bit` of each header seen is set.
    pub bitmap: u16,
    /// Offset of the first payload byte.
    pub payload_offset: usize,
}

/// The compiled parse graph.
#[derive(Debug, Clone)]
pub struct Parser {
    headers: Vec<HeaderDef>,
    states: Vec<ParseState>,
    start: usize,
    /// Alternate start state used for frames arriving on the recirculation
    /// port (they carry the state-resume header in front of Ethernet).
    recirc_start: Option<usize>,
    /// Deparser emit order (defaults to header registration order).
    emit_order: Vec<HeaderTypeId>,
    /// Deparse-time substitutions: when emitting field `.0`, take the value
    /// of field `.1` instead. Lets a header carry a *next-pass* value (the
    /// recirculation block "rewrites the P4runpro headers", §4.1.3) while
    /// the working PHV copy — used as an RPB match key — keeps the current
    /// pass's value.
    deparse_overrides: Vec<(FieldId, FieldId)>,
}

impl Parser {
    /// Construct with defaults appropriate to the type.
    pub fn new() -> Parser {
        Parser {
            headers: Vec::new(),
            states: Vec::new(),
            start: 0,
            recirc_start: None,
            emit_order: Vec::new(),
            deparse_overrides: Vec::new(),
        }
    }

    /// Add header.
    pub fn add_header(&mut self, def: HeaderDef) -> HeaderTypeId {
        assert!(self.headers.len() < 16, "parse bitmap holds at most 16 header types");
        let id = HeaderTypeId(self.headers.len());
        self.headers.push(def);
        self.emit_order.push(id);
        id
    }

    /// Add state.
    pub fn add_state(&mut self, state: ParseState) -> usize {
        self.states.push(state);
        self.states.len() - 1
    }

    /// Set start.
    pub fn set_start(&mut self, state: usize) {
        self.start = state;
    }

    /// Set recirc start.
    pub fn set_recirc_start(&mut self, state: usize) {
        self.recirc_start = Some(state);
    }

    /// Override the deparser emit order (e.g. recirculation header first).
    pub fn set_emit_order(&mut self, order: Vec<HeaderTypeId>) {
        self.emit_order = order;
    }

    /// When the deparser emits `field`, substitute the value of `from`.
    pub fn set_deparse_override(&mut self, field: FieldId, from: FieldId) {
        self.deparse_overrides.push((field, from));
    }

    /// Header def.
    pub fn header_def(&self, id: HeaderTypeId) -> &HeaderDef {
        &self.headers[id.0]
    }

    /// Headers.
    pub fn headers(&self) -> &[HeaderDef] {
        &self.headers
    }

    /// Num header types.
    pub fn num_header_types(&self) -> usize {
        self.headers.len()
    }

    /// Validate all headers' field coverage; called at provisioning.
    pub fn validate(&self) -> SimResult<()> {
        if self.states.is_empty() {
            return Err(SimError::Config("parser has no states".into()));
        }
        for def in &self.headers {
            def.validate_coverage()?;
        }
        Ok(())
    }

    /// The number of distinct accepting parse paths, which is the number of
    /// filtering tables `K` the initialization block provisions (§5).
    pub fn num_paths(&self) -> usize {
        fn walk(parser: &Parser, state: usize, depth: usize) -> usize {
            if depth > parser.states.len() {
                return 0;
            }
            let st = &parser.states[state];
            let mut total = 0;
            let mut targets: Vec<NextState> = st.transitions.iter().map(|t| t.2).collect();
            targets.push(st.default);
            for t in targets {
                total += match t {
                    NextState::Accept => 1,
                    NextState::Reject => 0,
                    NextState::State(s) => walk(parser, s, depth + 1),
                };
            }
            total
        }
        if self.states.is_empty() {
            0
        } else {
            walk(self, self.start, 0)
        }
    }

    /// Run the parse state machine over `frame`, extracting fields into
    /// `phv`, setting presence bits, and maintaining the parse-path bitmap.
    ///
    /// `from_recirc` selects the recirculation-port start state when one is
    /// configured.
    pub fn parse(
        &self,
        table: &FieldTable,
        frame: &[u8],
        phv: &mut Phv,
        from_recirc: bool,
    ) -> SimResult<ParseResult> {
        let mut offset = 0usize;
        let mut bitmap = 0u16;
        let mut state_idx = match (from_recirc, self.recirc_start) {
            (true, Some(s)) => s,
            _ => self.start,
        };
        if self.states.is_empty() {
            return Err(SimError::Config("parser has no states".into()));
        }
        loop {
            let state = &self.states[state_idx];
            let def = &self.headers[state.header.0];
            if frame.len() < offset + def.len_bytes {
                return Err(SimError::ParserReject);
            }
            for hf in &def.fields {
                let v = extract_bits(&frame[offset..offset + def.len_bytes], hf.bit_offset, hf.bits);
                phv.set(table, hf.field, v);
            }
            phv.set(table, def.presence, 1);
            bitmap |= 1 << def.bitmap_bit;
            offset += def.len_bytes;

            let next = match state.select {
                None => state.default,
                Some(sel) => {
                    let v = phv.get(sel);
                    state
                        .transitions
                        .iter()
                        .find(|(value, mask, _)| v & mask == value & mask)
                        .map(|t| t.2)
                        .unwrap_or(state.default)
                }
            };
            match next {
                NextState::Accept => break,
                NextState::Reject => return Err(SimError::ParserReject),
                NextState::State(s) => state_idx = s,
            }
        }
        let intr = table.intrinsics();
        phv.set(table, intr.parse_bitmap, u64::from(bitmap));
        phv.set(table, intr.pkt_len, frame.len() as u64);
        Ok(ParseResult { bitmap, payload_offset: offset })
    }

    /// Rebuild the frame from the PHV: every header whose presence bit is
    /// set is emitted (in `emit_order`), followed by `payload`.
    pub fn deparse(&self, table: &FieldTable, phv: &Phv, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + payload.len());
        self.deparse_into(table, phv, payload, &mut out);
        out
    }

    /// [`Parser::deparse`] into a caller-owned buffer (cleared first), so
    /// the recirculation loop can ping-pong two frame buffers instead of
    /// allocating a fresh `Vec` per pass.
    pub fn deparse_into(&self, _table: &FieldTable, phv: &Phv, payload: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.reserve(64 + payload.len());
        for id in &self.emit_order {
            let def = &self.headers[id.0];
            if phv.get(def.presence) == 0 {
                continue;
            }
            let start = out.len();
            out.resize(start + def.len_bytes, 0u8);
            let hdr = &mut out[start..start + def.len_bytes];
            for hf in &def.fields {
                let src = self
                    .deparse_overrides
                    .iter()
                    .find(|(f, _)| *f == hf.field)
                    .map(|(_, from)| *from)
                    .unwrap_or(hf.field);
                deposit_bits(hdr, hf.bit_offset, hf.bits, phv.get(src));
            }
            if let Some(ck_off) = def.checksum_at {
                hdr[ck_off] = 0;
                hdr[ck_off + 1] = 0;
                let c = netpkt::checksum::checksum(hdr);
                hdr[ck_off] = (c >> 8) as u8;
                hdr[ck_off + 1] = (c & 0xff) as u8;
            }
        }
        out.extend_from_slice(payload);
    }
}

impl Default for Parser {
    fn default() -> Self {
        Parser::new()
    }
}

/// Extract `bits` bits starting `bit_offset` bits into `data` (big-endian).
///
/// Works a byte at a time: the spanning bytes (at most 9 for a misaligned
/// 64-bit field) are accumulated big-endian, then shifted and masked down
/// to the requested window. Byte-wise accumulation is ~8× fewer loop
/// iterations than the naive bit loop, and this sits on the per-field
/// parse hot path.
pub fn extract_bits(data: &[u8], bit_offset: u16, bits: u8) -> u64 {
    debug_assert!(bits <= 64);
    if bits == 0 {
        return 0;
    }
    let off = usize::from(bit_offset);
    let last_bit = off + usize::from(bits) - 1;
    let first = off / 8;
    let last = last_bit / 8;
    // Bits below the field in the final byte, dropped by the right shift.
    let tail = 7 - (last_bit % 8);
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    if last - first < 8 {
        let mut acc: u64 = 0;
        for &b in &data[first..=last] {
            acc = (acc << 8) | u64::from(b);
        }
        (acc >> tail) & mask
    } else {
        // A misaligned 64-bit field spans 9 bytes; go through u128.
        let mut acc: u128 = 0;
        for &b in &data[first..=last] {
            acc = (acc << 8) | u128::from(b);
        }
        ((acc >> tail) as u64) & mask
    }
}

/// Deposit `bits` bits of `value` at `bit_offset` into `data` (big-endian).
///
/// Byte-wise like [`extract_bits`]: the field's value and mask are aligned
/// into a u128 window over the spanning bytes, then merged one byte at a
/// time with read-modify-write so neighbouring fields are preserved.
pub fn deposit_bits(data: &mut [u8], bit_offset: u16, bits: u8, value: u64) {
    debug_assert!(bits <= 64);
    if bits == 0 {
        return;
    }
    let off = usize::from(bit_offset);
    let last_bit = off + usize::from(bits) - 1;
    let first = off / 8;
    let last = last_bit / 8;
    let tail = 7 - (last_bit % 8);
    let mask: u128 = if bits == 64 { u128::from(u64::MAX) } else { (1u128 << bits) - 1 };
    let m = mask << tail;
    let v = (u128::from(value) & mask) << tail;
    let nbytes = last - first + 1;
    for (i, byte) in data[first..=last].iter_mut().enumerate() {
        let shift = 8 * (nbytes - 1 - i);
        let bm = ((m >> shift) & 0xff) as u8;
        let bv = ((v >> shift) & 0xff) as u8;
        *byte = (*byte & !bm) | bv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_extraction_roundtrip() {
        let mut buf = [0u8; 8];
        deposit_bits(&mut buf, 5, 11, 0x5A5);
        assert_eq!(extract_bits(&buf, 5, 11), 0x5A5);
        assert_eq!(extract_bits(&buf, 0, 5), 0);
        assert_eq!(extract_bits(&buf, 16, 8), 0);
    }

    /// The byte-wise `extract_bits`/`deposit_bits` against a bit-at-a-time
    /// reference, over every (offset, width) window that fits a 12-byte
    /// buffer — including the misaligned 64-bit windows that span 9 bytes.
    #[test]
    fn byte_wise_bit_ops_match_bit_wise_reference() {
        fn ref_extract(data: &[u8], bit_offset: u16, bits: u8) -> u64 {
            let mut v: u64 = 0;
            for i in 0..bits {
                let bit = usize::from(bit_offset) + usize::from(i);
                let b = (data[bit / 8] >> (7 - (bit % 8))) & 1;
                v = (v << 1) | u64::from(b);
            }
            v
        }
        fn ref_deposit(data: &mut [u8], bit_offset: u16, bits: u8, value: u64) {
            for i in 0..bits {
                let bit = usize::from(bit_offset) + usize::from(i);
                let b = ((value >> (bits - 1 - i)) & 1) as u8;
                let mask = 1u8 << (7 - (bit % 8));
                if b == 1 {
                    data[bit / 8] |= mask;
                } else {
                    data[bit / 8] &= !mask;
                }
            }
        }
        let mut pattern = [0u8; 12];
        for (i, b) in pattern.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(0x5D) ^ 0xA7;
        }
        let mut value_seed = 0x9E37_79B9_7F4A_7C15u64;
        for bits in 1..=64u8 {
            for off in 0..=(96 - u16::from(bits)) {
                assert_eq!(
                    extract_bits(&pattern, off, bits),
                    ref_extract(&pattern, off, bits),
                    "extract mismatch at off={off} bits={bits}"
                );
                value_seed = value_seed.wrapping_mul(6364136223846793005).wrapping_add(off.into());
                let mut got = pattern;
                let mut want = pattern;
                deposit_bits(&mut got, off, bits, value_seed);
                ref_deposit(&mut want, off, bits, value_seed);
                assert_eq!(got, want, "deposit mismatch at off={off} bits={bits}");
            }
        }
    }

    #[test]
    fn extract_full_bytes() {
        let buf = [0xDE, 0xAD, 0xBE, 0xEF];
        assert_eq!(extract_bits(&buf, 0, 32), 0xDEADBEEF);
        assert_eq!(extract_bits(&buf, 8, 16), 0xADBE);
    }

    /// A 2-byte outer header (pad + kind) optionally followed by a 1-byte
    /// inner header, selected on `kind == 0x42`.
    fn tiny_parser(table: &mut FieldTable) -> (Parser, FieldId, FieldId) {
        let mut p = Parser::new();
        let f_pad = table.register("hdr.outer.pad", 8).unwrap();
        let f_kind = table.register("hdr.outer.kind", 8).unwrap();
        let f_val = table.register("hdr.inner.val", 8).unwrap();
        let v_outer = table.register("hdr.outer.$valid", 1).unwrap();
        let v_inner = table.register("hdr.inner.$valid", 1).unwrap();
        let outer = p.add_header(HeaderDef {
            name: "outer".into(),
            len_bytes: 2,
            fields: vec![
                HeaderField { field: f_pad, bit_offset: 0, bits: 8 },
                HeaderField { field: f_kind, bit_offset: 8, bits: 8 },
            ],
            presence: v_outer,
            checksum_at: None,
            bitmap_bit: 0,
        });
        let inner = p.add_header(HeaderDef {
            name: "inner".into(),
            len_bytes: 1,
            fields: vec![HeaderField { field: f_val, bit_offset: 0, bits: 8 }],
            presence: v_inner,
            checksum_at: None,
            bitmap_bit: 1,
        });
        let s_inner = p.add_state(ParseState {
            header: inner,
            select: None,
            transitions: vec![],
            default: NextState::Accept,
        });
        let s_outer = p.add_state(ParseState {
            header: outer,
            select: Some(f_kind),
            transitions: vec![(0x42, 0xff, NextState::State(s_inner))],
            default: NextState::Accept,
        });
        p.set_start(s_outer);
        p.validate().unwrap();
        (p, f_kind, f_val)
    }

    #[test]
    fn parse_follows_transitions_and_sets_bitmap() {
        let mut table = FieldTable::new();
        let (p, _, f_val) = tiny_parser(&mut table);
        let mut phv = Phv::new(&table);
        let r = p.parse(&table, &[0x00, 0x42, 0x99, 0xAA], &mut phv, false).unwrap();
        assert_eq!(r.bitmap, 0b11);
        assert_eq!(phv.get(f_val), 0x99);
        assert_eq!(r.payload_offset, 3);

        let mut phv2 = Phv::new(&table);
        let r2 = p.parse(&table, &[0x00, 0x00, 0x99], &mut phv2, false).unwrap();
        assert_eq!(r2.bitmap, 0b01);
        assert_eq!(r2.payload_offset, 2);
    }

    #[test]
    fn parse_truncated_rejects() {
        let mut table = FieldTable::new();
        let (p, _, _) = tiny_parser(&mut table);
        let mut phv = Phv::new(&table);
        assert!(matches!(p.parse(&table, &[0x00], &mut phv, false), Err(SimError::ParserReject)));
        assert!(p.parse(&table, &[0x00, 0x42], &mut phv, false).is_err());
    }

    #[test]
    fn deparse_rebuilds_with_modified_fields() {
        let mut table = FieldTable::new();
        let (p, _, f_val) = tiny_parser(&mut table);
        let mut phv = Phv::new(&table);
        let frame = [0x00, 0x42, 0x99, 0xAA];
        let r = p.parse(&table, &frame, &mut phv, false).unwrap();
        phv.set(&table, f_val, 0x77);
        let out = p.deparse(&table, &phv, &frame[r.payload_offset..]);
        assert_eq!(out, vec![0x00, 0x42, 0x77, 0xAA]);
    }

    #[test]
    fn deparse_honours_presence_push_and_pop() {
        let mut table = FieldTable::new();
        let (p, _, f_val) = tiny_parser(&mut table);
        let v_inner = table.lookup("hdr.inner.$valid").unwrap();
        let mut phv = Phv::new(&table);
        // Parse a frame with no inner header, then push one.
        let frame = [0x00, 0x00, 0xAA];
        let r = p.parse(&table, &frame, &mut phv, false).unwrap();
        phv.set(&table, v_inner, 1);
        phv.set(&table, f_val, 0x55);
        let out = p.deparse(&table, &phv, &frame[r.payload_offset..]);
        assert_eq!(out, vec![0x00, 0x00, 0x55, 0xAA]);
        // Now pop it again.
        phv.set(&table, v_inner, 0);
        let out = p.deparse(&table, &phv, &frame[r.payload_offset..]);
        assert_eq!(out, vec![0x00, 0x00, 0xAA]);
    }

    #[test]
    fn coverage_validation_catches_gaps_and_overlaps() {
        let mut table = FieldTable::new();
        let f = table.register("f", 8).unwrap();
        let v = table.register("v", 1).unwrap();
        let gap = HeaderDef {
            name: "gap".into(),
            len_bytes: 2,
            fields: vec![HeaderField { field: f, bit_offset: 0, bits: 8 }],
            presence: v,
            checksum_at: None,
            bitmap_bit: 0,
        };
        assert!(gap.validate_coverage().is_err());
        let overlap = HeaderDef {
            name: "ovl".into(),
            len_bytes: 1,
            fields: vec![
                HeaderField { field: f, bit_offset: 0, bits: 8 },
                HeaderField { field: f, bit_offset: 4, bits: 4 },
            ],
            presence: v,
            checksum_at: None,
            bitmap_bit: 0,
        };
        assert!(overlap.validate_coverage().is_err());
    }

    #[test]
    fn num_paths_counts_accepting_paths() {
        let mut table = FieldTable::new();
        let (p, _, _) = tiny_parser(&mut table);
        assert_eq!(p.num_paths(), 2);
    }

    #[test]
    fn recirc_start_state_used_for_recirc_port() {
        let mut table = FieldTable::new();
        let f_tag = table.register("hdr.rc.tag", 8).unwrap();
        let v_rc = table.register("hdr.rc.$valid", 1).unwrap();
        let (mut p, _, _) = {
            // Build the tiny parser inline so we can extend it.
            let mut p = Parser::new();
            let f_pad = table.register("hdr.o.pad", 8).unwrap();
            let v_o = table.register("hdr.o.$valid", 1).unwrap();
            let outer = p.add_header(HeaderDef {
                name: "o".into(),
                len_bytes: 1,
                fields: vec![HeaderField { field: f_pad, bit_offset: 0, bits: 8 }],
                presence: v_o,
                checksum_at: None,
                bitmap_bit: 0,
            });
            let s = p.add_state(ParseState {
                header: outer,
                select: None,
                transitions: vec![],
                default: NextState::Accept,
            });
            p.set_start(s);
            (p, f_pad, v_o)
        };
        let rc = p.add_header(HeaderDef {
            name: "rc".into(),
            len_bytes: 1,
            fields: vec![HeaderField { field: f_tag, bit_offset: 0, bits: 8 }],
            presence: v_rc,
            checksum_at: None,
            bitmap_bit: 1,
        });
        let s_rc = p.add_state(ParseState {
            header: rc,
            select: None,
            transitions: vec![],
            default: NextState::State(0),
        });
        p.set_recirc_start(s_rc);
        let mut phv = Phv::new(&table);
        let r = p.parse(&table, &[0x7e, 0x01], &mut phv, true).unwrap();
        assert_eq!(phv.get(f_tag), 0x7e);
        assert_eq!(r.bitmap, 0b11);
        // Normal port ignores the recirc state.
        let mut phv2 = Phv::new(&table);
        let r2 = p.parse(&table, &[0x7e], &mut phv2, false).unwrap();
        assert_eq!(r2.bitmap, 0b01);
    }

    #[test]
    fn intrinsic_pkt_len_set() {
        let mut table = FieldTable::new();
        let (p, _, _) = tiny_parser(&mut table);
        let mut phv = Phv::new(&table);
        p.parse(&table, &[0, 0, 1, 2, 3], &mut phv, false).unwrap();
        assert_eq!(phv.get(table.intrinsics().pkt_len), 5);
    }
}
