//! Simulated time.
//!
//! All hardware-side delays in the reproduction (control-channel writes,
//! reprovisioning, link serialization, recirculation) advance a
//! deterministic simulated clock instead of wall time, so experiment output
//! is bit-for-bit reproducible. Wall time is only used where the paper
//! measures real computation (the allocation solver).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// `ZERO`.
    pub const ZERO: Nanos = Nanos(0);

    /// From micros.
    pub fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// From millis.
    pub fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// From secs.
    pub fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Fractional seconds, handy for building time series.
    pub fn from_secs_f64(s: f64) -> Nanos {
        Nanos((s * 1e9).round() as u64)
    }

    /// As micros f64.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As millis f64.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As secs f64.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating sub.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A monotonically advancing simulated clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Nanos,
}

impl SimClock {
    /// Construct with defaults appropriate to the type.
    pub fn new() -> SimClock {
        SimClock { now: Nanos::ZERO }
    }

    /// Now.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advance.
    pub fn advance(&mut self, by: Nanos) {
        self.now += by;
    }

    /// Advance to an absolute time; later-than-now only (no time travel).
    pub fn advance_to(&mut self, t: Nanos) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// A link or port bandwidth. Stored as bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// From gbps.
    pub fn from_gbps(g: f64) -> Bandwidth {
        Bandwidth(g * 1e9)
    }

    /// From mbps.
    pub fn from_mbps(m: f64) -> Bandwidth {
        Bandwidth(m * 1e6)
    }

    /// As gbps.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Time to serialize `bytes` onto this link.
    pub fn serialize(self, bytes: usize) -> Nanos {
        Nanos(((bytes as f64 * 8.0) / self.0 * 1e9).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanos::from_micros(3), Nanos(3_000));
        assert_eq!(Nanos::from_millis(2), Nanos(2_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
        assert_eq!(Nanos::from_secs_f64(0.5), Nanos(500_000_000));
        assert!((Nanos(1_500_000).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        c.advance(Nanos(100));
        c.advance_to(Nanos(50)); // must not go backwards
        assert_eq!(c.now(), Nanos(100));
        c.advance_to(Nanos(500));
        assert_eq!(c.now(), Nanos(500));
    }

    #[test]
    fn serialization_time() {
        // 1500 bytes at 100 Gbps = 120 ns.
        let t = Bandwidth::from_gbps(100.0).serialize(1500);
        assert_eq!(t, Nanos(120));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Nanos(12).to_string(), "12ns");
        assert_eq!(Nanos(12_000).to_string(), "12.000us");
        assert_eq!(Nanos(12_000_000).to_string(), "12.000ms");
        assert_eq!(Nanos(2_500_000_000).to_string(), "2.500s");
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Nanos(5).saturating_sub(Nanos(10)), Nanos::ZERO);
    }
}
