//! # rmt-sim — a resource-faithful RMT switch ASIC simulator
//!
//! This crate is the hardware substitute for the Intel Tofino switch the
//! P4runpro paper prototypes on (see `DESIGN.md` at the repository root for
//! the substitution argument). It models a Reconfigurable Match-Action
//! Table pipeline at the level the paper's claims live at:
//!
//! * a programmable **parser** state machine producing the parse-path
//!   bitmap (§4.1.1 of the paper), and a **deparser** that rebuilds headers
//!   from the PHV so internal headers can be pushed and stripped
//!   ([`parser`]);
//! * **match-action stages** with exact/ternary/LPM/range tables, priority
//!   resolution, and per-entry atomic updates ([`table`], [`pipeline`]);
//! * **VLIW actions** with parallel-issue semantics, per-entry action data,
//!   fused hash+mask calls ([`action`]);
//! * **stateful ALUs** with Tofino-style predicated read-modify-write on
//!   per-stage register arrays — one access per packet per stage, no
//!   cross-stage memory ([`salu`]);
//! * **hash units**: the real CRC16/CRC32 family the prototype uses,
//!   validated against standard check values ([`hash`]);
//! * a **traffic manager** with forwarding verdicts and an analytic
//!   recirculation bandwidth/latency model ([`tm`]);
//! * the assembled **switch** with ports, counters, the recirculation loop,
//!   and atomic control operations ([`switch`]), plus a **control channel**
//!   with a `bfrt_grpc`-calibrated latency model ([`control`]);
//! * **resource accounting** (PHV/hash/SRAM/TCAM/VLIW/SALU/LTID — the
//!   P4 Insight stand-in) and a **power/latency estimator** ([`resources`],
//!   [`power`]);
//! * a deterministic **simulated clock** ([`clock`]).
//!
//! The simulator is synchronous and single-threaded by design: packet
//! processing is CPU-bound, so the async idiom buys nothing here (cf. the
//! tokio guide's own advice); determinism is what the experiments need.
//!
//! ## Quick example
//!
//! ```
//! use rmt_sim::prelude::*;
//!
//! // Declare fields, a one-header parser, and a forwarding table.
//! let mut ft = FieldTable::new();
//! let tag = ft.register("hdr.demo.tag", 8).unwrap();
//! let pad = ft.register("hdr.demo.pad", 8).unwrap();
//! let valid = ft.register("hdr.demo.$valid", 1).unwrap();
//! let intr = ft.intrinsics();
//!
//! let mut parser = Parser::new();
//! let h = parser.add_header(HeaderDef {
//!     name: "demo".into(),
//!     len_bytes: 2,
//!     fields: vec![
//!         HeaderField { field: tag, bit_offset: 0, bits: 8 },
//!         HeaderField { field: pad, bit_offset: 8, bits: 8 },
//!     ],
//!     presence: valid,
//!     checksum_at: None,
//!     bitmap_bit: 0,
//! });
//! let s = parser.add_state(ParseState {
//!     header: h,
//!     select: None,
//!     transitions: vec![],
//!     default: NextState::Accept,
//! });
//! parser.set_start(s);
//!
//! let mut ingress = Pipeline::new(Gress::Ingress, 1, StageLimits::default());
//! let mut t = Table::new(
//!     "fwd",
//!     KeySpec::new(vec![(tag, MatchKind::Exact)]),
//!     vec![ActionDef {
//!         name: "to_port_1".into(),
//!         ops: vec![
//!             VliwOp::set(intr.egress_spec, Operand::Const(1)),
//!             VliwOp::set(intr.egress_valid, Operand::Const(1)),
//!         ],
//!         hash: None,
//!         salu: None,
//!     }],
//!     16,
//! );
//! t.set_default_action(0, vec![]);
//! ingress.stage_mut(0).unwrap().add_table(t);
//! let egress = Pipeline::new(Gress::Egress, 1, StageLimits::default());
//!
//! let mut sw = Switch::assemble(SwitchConfig::default(), ft, parser, ingress, egress);
//! sw.provision().unwrap();
//! let out = sw.process_frame(0, &[0x07, 0x00]).unwrap();
//! assert_eq!(out.emitted[0].0, 1);
//! ```

pub mod action;
pub mod clock;
pub mod control;
pub mod error;
pub mod fault;
pub mod fxhash;
pub mod hash;
pub mod parallel;
pub mod parser;
pub mod phv;
pub mod pipeline;
pub mod power;
pub mod resources;
pub mod salu;
pub mod snapshot;
pub mod switch;
pub mod table;
pub mod telemetry;
pub mod tm;
pub mod trace;

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::action::{ActionDef, AluFunc, HashCall, HashInput, Operand, SaluCall, VliwOp};
    pub use crate::clock::{Bandwidth, Nanos, SimClock};
    pub use crate::control::{BatchOutcome, ControlChannel, LatencyModel, VectoredModel};
    pub use crate::error::{SimError, SimResult};
    pub use crate::fault::{FaultKind, FaultPlan, FaultTrigger, OpKind};
    pub use crate::hash::CrcSpec;
    pub use crate::parallel::{WorkerPool, WorkerStats};
    pub use crate::parser::{HeaderDef, HeaderField, HeaderTypeId, NextState, ParseState, Parser};
    pub use crate::phv::{FieldId, FieldTable, Phv};
    pub use crate::pipeline::{Gress, Pipeline, Stage, StageLimits};
    pub use crate::power::{PowerEstimate, PowerModel};
    pub use crate::resources::ChipReport;
    pub use crate::salu::{RegArray, SaluCond, SaluExpr, SaluInstr, SaluOutput};
    pub use crate::snapshot::{
        AppliedOp, BatchDelta, SnapshotPublisher, SnapshotReader,
    };
    pub use crate::switch::{
        ArrayRef, ControlOp, OpResult, PortCounters, ProcessOutcome, Switch, SwitchConfig,
        TableIndexStats, TableRef,
    };
    pub use crate::table::{
        EntryHandle, KeySpec, MatchKind, MatchValue, Table, TableEntry,
    };
    pub use crate::telemetry::{
        Counter, Histogram, MetricsRecorder, NopRecorder, Recorder, StageMetrics, TeeRecorder,
        TmMetrics,
    };
    pub use crate::tm::{RecircModel, TmDecision, Verdict};
    pub use crate::trace::{
        LifecycleKind, PacketJourney, TraceBuffer, TraceConfig, TraceEvent, TraceEventKind,
        TraceFilter, TraceStats,
    };
}
