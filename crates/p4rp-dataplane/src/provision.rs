//! Provisioning: build the complete P4runpro data plane onto a fresh
//! switch.
//!
//! This is the once-per-deployment step of the P4runpro workflow (§3.2):
//! after `provision()` succeeds the binary never changes again — every
//! subsequent reconfiguration is pure table-entry and register traffic
//! through the control channel.

use crate::atomic::{build_catalogue, build_recirc_actions, Catalogue};
use crate::encode::{init, recirc_key_spec, rpb_key_spec};
use crate::fields::{self, P4rpFields};
use crate::layout::*;
use rmt_sim::action::{ActionDef, Operand, VliwOp};
use rmt_sim::error::SimResult;
use rmt_sim::pipeline::{Gress, Pipeline, StageLimits};
use rmt_sim::resources::ChipReport;
use rmt_sim::salu::RegArray;
use rmt_sim::switch::{Switch, SwitchConfig, TableRef};
use rmt_sim::table::Table;

/// Handles into the provisioned data plane, used by the control plane.
#[derive(Debug, Clone)]
pub struct Dataplane {
    /// Fields.
    pub fields: P4rpFields,
    /// Per-RPB action catalogues (index = RPB id − 1). Ingress RPBs carry
    /// the forwarding operations; each RPB's memory hash uses its stage's
    /// CRC16 polynomial.
    pub catalogues: Vec<Catalogue>,
    /// The unified initialization-block filtering table.
    pub init_table: TableRef,
    /// Recirc table.
    pub recirc_table: TableRef,
    /// The provisioning-time resource report (Figure 10 input).
    pub report: ChipReport,
}

impl Dataplane {
    /// The catalogue of a given RPB.
    pub fn catalogue(&self, rpb: RpbId) -> &Catalogue {
        &self.catalogues[usize::from(rpb.0) - 1]
    }

    /// The CRC16 polynomial of an RPB's memory-addressing hash unit.
    pub fn mem_crc(rpb: RpbId) -> rmt_sim::hash::CrcSpec {
        rmt_sim::hash::HH_CRC_SET[(usize::from(rpb.0) - 1) % 4]
    }

}

/// Build and provision the full P4runpro data plane.
pub fn provision(cfg: SwitchConfig) -> SimResult<(Switch, Dataplane)> {
    let (ft, parser, f) = fields::build()?;
    let limits = StageLimits::default();

    let catalogues: Vec<Catalogue> = RpbId::all()
        .map(|rpb| build_catalogue(&ft, &f, rpb.is_ingress(), Dataplane::mem_crc(rpb)))
        .collect();

    let mut ingress = Pipeline::new(Gress::Ingress, INGRESS_STAGES, limits);
    let mut egress = Pipeline::new(Gress::Egress, EGRESS_STAGES, limits);

    // Initialization block: the unified filtering table (§4.1.1; see the
    // DESIGN.md deviation note on K=1).
    let init_table = {
        let stage = ingress.stage_mut(INIT_STAGE)?;
        let set_prog = ActionDef {
            name: "set_prog".into(),
            ops: vec![VliwOp::set(f.prog_id, Operand::Arg(0))],
            hash: None,
            salu: None,
        };
        let idx = stage.add_table(
            Table::new("init_filter", init::key_spec(&ft, &f), vec![set_prog], INIT_TABLE_SIZE)
                .with_atcam(),
        );
        TableRef { gress: Gress::Ingress, stage: INIT_STAGE, table: idx }
    };

    // RPBs: one table + one 65,536-bucket memory per stage (§5).
    for rpb in RpbId::all() {
        let (gress, stage_idx) = rpb.stage();
        let cat = &catalogues[usize::from(rpb.0) - 1];
        let pipe = match gress {
            Gress::Ingress => &mut ingress,
            Gress::Egress => &mut egress,
        };
        let stage = pipe.stage_mut(stage_idx)?;
        stage.add_table(Table::new(
            format!("rpb_{}", rpb.0),
            rpb_key_spec(&f),
            cat.actions.clone(),
            RPB_TABLE_SIZE,
        ));
        stage.add_array(RegArray::new(format!("mem_{}", rpb.0), RPB_MEM_SIZE as usize));
    }

    // Recirculation block (§4.1.3).
    let recirc_table = {
        let stage = ingress.stage_mut(RECIRC_STAGE)?;
        let (actions, _) = build_recirc_actions(&ft, &f);
        let idx = stage.add_table(Table::new(
            "recirc_block",
            recirc_key_spec(&f),
            actions,
            RECIRC_TABLE_SIZE,
        ));
        TableRef { gress: Gress::Ingress, stage: RECIRC_STAGE, table: idx }
    };

    let mut sw = Switch::assemble(cfg, ft, parser, ingress, egress);
    // The recirculation header never leaves the switch (§4.1.3).
    sw.set_strip_on_emit(vec![f.rc_valid]);
    let report = sw.provision()?;

    let dp = Dataplane {
        fields: f,
        catalogues,
        init_table,
        recirc_table,
        report,
    };
    Ok((sw, dp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provisioning_succeeds_within_hardware_limits() {
        let (sw, dp) = provision(SwitchConfig::default()).unwrap();
        assert!(sw.is_provisioned());
        assert_eq!(sw.table(dp.init_table).unwrap().capacity, 8192);
        // All 22 RPB tables exist and are empty.
        for rpb in RpbId::all() {
            let t = sw.table(rpb.table_ref()).unwrap();
            assert_eq!(t.len(), 0);
            assert_eq!(t.capacity, RPB_TABLE_SIZE);
            let a = sw.array(rpb.array_ref()).unwrap();
            assert_eq!(a.size(), RPB_MEM_SIZE);
        }
    }

    #[test]
    fn report_matches_paper_profile() {
        let (_, dp) = provision(SwitchConfig::default()).unwrap();
        let r = &dp.report;
        // Every stage is active → full pipeline latency (Table 2).
        assert_eq!(r.active_ingress_stages, INGRESS_STAGES);
        assert_eq!(r.active_egress_stages, EGRESS_STAGES);
        let pct = r.utilization_pct();
        let [phv, _hash, sram, tcam, vliw, _salu, ltid] = pct;
        // Figure 10 qualitative profile: high VLIW ("uses almost all"),
        // high-but-bounded TCAM ("TCAM usage limits the scalability"),
        // moderate SRAM ("does not heavily rely on SRAM"), efficient PHV
        // and LTID.
        assert!(vliw > 80.0, "VLIW {vliw:.1}% should be nearly full");
        assert!(tcam > 50.0 && tcam <= 100.0, "TCAM {tcam:.1}%");
        assert!(sram < 50.0, "SRAM {sram:.1}% should stay moderate");
        assert!(phv > 20.0 && phv < 90.0, "PHV {phv:.1}%");
        assert!(ltid < 50.0, "LTID {ltid:.1}%");
    }

    #[test]
    fn catalogue_selection_by_rpb() {
        let (_, dp) = provision(SwitchConfig::default()).unwrap();
        // Ingress catalogues are larger (forwarding ops present).
        assert!(dp.catalogue(RpbId(3)).len() > dp.catalogue(RpbId(15)).len());
        // Adjacent RPBs use distinct memory-hash polynomials (§6.4).
        assert_ne!(Dataplane::mem_crc(RpbId(1)), Dataplane::mem_crc(RpbId(2)));
        assert_eq!(Dataplane::mem_crc(RpbId(1)), Dataplane::mem_crc(RpbId(5)));
    }
}
