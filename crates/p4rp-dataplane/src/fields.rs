//! PHV field layout and the fixed parse graph of the P4runpro data plane.
//!
//! The data plane abstracts three "registers" in the PHV — `har`, `sar`,
//! `mar` (§4.1.2) — plus the control flags (program id, branch id,
//! recirculation id), the translated physical memory address, and the SALU
//! selection flag. The parser covers the protocol stack the paper's 15
//! example programs need: Ethernet / IPv4 / {TCP, UDP} / NetCache, plus the
//! internal recirculation header whose fields alias the control state so
//! that parsing a recirculated frame *is* the state restoration of §4.1.3.
//!
//! Header parsing is fixed at provisioning time (§7 "Header Parsing"): the
//! operator can customize this module before provisioning, but runtime
//! programs only see what it extracts.

use rmt_sim::phv::{FieldId, FieldTable};
use rmt_sim::parser::{HeaderDef, HeaderField, HeaderTypeId, NextState, ParseState, Parser};
use rmt_sim::error::SimResult;
use p4rp_lang::Reg;

/// Parse-path bitmap bits, one per header type (§4.1.1).
pub mod bitmap {
    /// `ETH`.
    pub const ETH: u8 = 0;
    /// `IPV4`.
    pub const IPV4: u8 = 1;
    /// `TCP`.
    pub const TCP: u8 = 2;
    /// `UDP`.
    pub const UDP: u8 = 3;
    /// `NC`.
    pub const NC: u8 = 4;
    /// `RECIRC`.
    pub const RECIRC: u8 = 5;
}

/// The UDP destination port that selects the NetCache header in the fixed
/// parser.
pub const NC_UDP_PORT: u16 = netpkt::NETCACHE_PORT;

/// All PHV field ids of the P4runpro data plane.
#[derive(Debug, Clone)]
pub struct P4rpFields {
    // -- the three registers -------------------------------------------------
    /// Har.
    pub har: FieldId,
    /// Sar.
    pub sar: FieldId,
    /// Mar.
    pub mar: FieldId,
    // -- control flags -------------------------------------------------------
    /// Prog id.
    pub prog_id: FieldId,
    /// Branch id.
    pub branch_id: FieldId,
    /// Recirc id.
    pub recirc_id: FieldId,
    /// Next-pass recirculation id written into the state header by the
    /// recirculation block (the working `recirc_id` key is untouched until
    /// the next parse).
    pub recirc_next: FieldId,
    /// Translated physical memory address (output of the offset step).
    pub pma: FieldId,
    /// Selects the alternate SALU instruction (§4.1.2).
    pub salu_flag: FieldId,
    /// Scratch container used to back up the supportive register during
    /// pseudo-primitive expansion (Figure 4(b)).
    pub scratch: FieldId,
    /// Padding bits of the recirculation header's flag byte.
    pub rc_pad: FieldId,
    // -- header presence bits ------------------------------------------------
    /// Eth valid.
    pub eth_valid: FieldId,
    /// Ipv4 valid.
    pub ipv4_valid: FieldId,
    /// Tcp valid.
    pub tcp_valid: FieldId,
    /// Udp valid.
    pub udp_valid: FieldId,
    /// Nc valid.
    pub nc_valid: FieldId,
    /// Rc valid.
    pub rc_valid: FieldId,
    // -- header type ids ------------------------------------------------------
    /// H eth.
    pub h_eth: HeaderTypeId,
    /// H ipv4.
    pub h_ipv4: HeaderTypeId,
    /// H tcp.
    pub h_tcp: HeaderTypeId,
    /// H udp.
    pub h_udp: HeaderTypeId,
    /// H nc.
    pub h_nc: HeaderTypeId,
    /// H rc.
    pub h_rc: HeaderTypeId,
    // -- five-tuple fields, in HASH_5_TUPLE input order ------------------------
    /// Ipv4 src.
    pub ipv4_src: FieldId,
    /// Ipv4 dst.
    pub ipv4_dst: FieldId,
    /// L4 src port.
    pub l4_src_port: FieldId,
    /// L4 dst port.
    pub l4_dst_port: FieldId,
    /// Ipv4 proto.
    pub ipv4_proto: FieldId,
    /// Every program-visible field, `(name, id)` — the EXTRACT/MODIFY
    /// universe and the filter-field universe.
    pub named: Vec<(String, FieldId)>,
}

impl P4rpFields {
    /// Lookup.
    pub fn lookup(&self, name: &str) -> Option<FieldId> {
        self.named.iter().find(|(n, _)| n == name).map(|(_, id)| *id)
    }

    /// Reg.
    pub fn reg(&self, r: Reg) -> FieldId {
        match r {
            Reg::Har => self.har,
            Reg::Sar => self.sar,
            Reg::Mar => self.mar,
        }
    }

    /// The five-tuple input fields for the hardware hash, in canonical
    /// order (src addr, dst addr, src port, dst port, protocol).
    ///
    /// Note: the UDP and TCP port fields alias the same PHV containers
    /// (`l4_src_port` / `l4_dst_port`), mirroring how the prototype shares
    /// PHV between mutually exclusive headers.
    pub fn five_tuple(&self) -> Vec<FieldId> {
        vec![self.ipv4_src, self.ipv4_dst, self.l4_src_port, self.l4_dst_port, self.ipv4_proto]
    }

    /// Names of all program-visible fields (for the type checker).
    pub fn field_names(&self) -> Vec<String> {
        self.named.iter().map(|(n, _)| n.clone()).collect()
    }
}

/// Register all fields and build the fixed parser.
///
/// Returns the populated field table, the parse graph, and the field
/// handle bundle.
pub fn build() -> SimResult<(FieldTable, Parser, P4rpFields)> {
    let mut ft = FieldTable::new();
    let intr = ft.intrinsics();

    // Control state. 32-bit registers: the maximum operable width of the
    // hardware ALUs (§5).
    let har = ft.register("p4rp.har", 32)?;
    let sar = ft.register("p4rp.sar", 32)?;
    let mar = ft.register("p4rp.mar", 32)?;
    let prog_id = ft.register("p4rp.prog_id", 16)?;
    let branch_id = ft.register("p4rp.branch_id", 16)?;
    let recirc_id = ft.register("p4rp.recirc_id", 8)?;
    let recirc_next = ft.register("p4rp.recirc_next", 8)?;
    let pma = ft.register("p4rp.pma", 32)?;
    let salu_flag = ft.register("p4rp.salu_flag", 1)?;
    let scratch = ft.register("p4rp.scratch", 32)?;
    let rc_pad = ft.register("p4rp.rc_pad", 4)?;

    let mut named: Vec<(String, FieldId)> = Vec::new();
    let reg_field = |ft: &mut FieldTable, named: &mut Vec<(String, FieldId)>, name: &str, bits: u8| -> SimResult<FieldId> {
        let id = ft.register(name, bits)?;
        named.push((name.to_string(), id));
        Ok(id)
    };

    // Ethernet.
    let eth_dst = reg_field(&mut ft, &mut named, "hdr.eth.dst", 48)?;
    let eth_src = reg_field(&mut ft, &mut named, "hdr.eth.src", 48)?;
    let eth_type = reg_field(&mut ft, &mut named, "hdr.eth.type", 16)?;
    let eth_valid = ft.register("hdr.eth.$valid", 1)?;

    // IPv4 (full coverage — the deparser rebuilds headers from the PHV).
    let ipv4_ver_ihl = reg_field(&mut ft, &mut named, "hdr.ipv4.ver_ihl", 8)?;
    let ipv4_dscp = reg_field(&mut ft, &mut named, "hdr.ipv4.dscp", 6)?;
    let ipv4_ecn = reg_field(&mut ft, &mut named, "hdr.ipv4.ecn", 2)?;
    let ipv4_len = reg_field(&mut ft, &mut named, "hdr.ipv4.len", 16)?;
    let ipv4_id = reg_field(&mut ft, &mut named, "hdr.ipv4.id", 16)?;
    let ipv4_frag = reg_field(&mut ft, &mut named, "hdr.ipv4.frag", 16)?;
    let ipv4_ttl = reg_field(&mut ft, &mut named, "hdr.ipv4.ttl", 8)?;
    let ipv4_proto = reg_field(&mut ft, &mut named, "hdr.ipv4.proto", 8)?;
    let ipv4_csum = reg_field(&mut ft, &mut named, "hdr.ipv4.checksum", 16)?;
    let ipv4_src = reg_field(&mut ft, &mut named, "hdr.ipv4.src", 32)?;
    let ipv4_dst = reg_field(&mut ft, &mut named, "hdr.ipv4.dst", 32)?;
    let ipv4_valid = ft.register("hdr.ipv4.$valid", 1)?;

    // TCP and UDP share the L4 port containers.
    let l4_src_port = reg_field(&mut ft, &mut named, "hdr.l4.src_port", 16)?;
    let l4_dst_port = reg_field(&mut ft, &mut named, "hdr.l4.dst_port", 16)?;
    named.push(("hdr.tcp.src_port".into(), l4_src_port));
    named.push(("hdr.tcp.dst_port".into(), l4_dst_port));
    named.push(("hdr.udp.src_port".into(), l4_src_port));
    named.push(("hdr.udp.dst_port".into(), l4_dst_port));

    let tcp_seq = reg_field(&mut ft, &mut named, "hdr.tcp.seq", 32)?;
    let tcp_ack = reg_field(&mut ft, &mut named, "hdr.tcp.ack", 32)?;
    let tcp_off_flags = reg_field(&mut ft, &mut named, "hdr.tcp.off_flags", 16)?;
    let tcp_window = reg_field(&mut ft, &mut named, "hdr.tcp.window", 16)?;
    let tcp_csum = reg_field(&mut ft, &mut named, "hdr.tcp.checksum", 16)?;
    let tcp_urgent = reg_field(&mut ft, &mut named, "hdr.tcp.urgent", 16)?;
    let tcp_valid = ft.register("hdr.tcp.$valid", 1)?;

    let udp_len = reg_field(&mut ft, &mut named, "hdr.udp.len", 16)?;
    let udp_csum = reg_field(&mut ft, &mut named, "hdr.udp.checksum", 16)?;
    let udp_valid = ft.register("hdr.udp.$valid", 1)?;

    // NetCache header: op(8) key1(32) key2(32) value(32).
    let nc_op = reg_field(&mut ft, &mut named, "hdr.nc.op", 8)?;
    let nc_key1 = reg_field(&mut ft, &mut named, "hdr.nc.key1", 32)?;
    let nc_key2 = reg_field(&mut ft, &mut named, "hdr.nc.key2", 32)?;
    let nc_value = reg_field(&mut ft, &mut named, "hdr.nc.value", 32)?;
    let nc_valid = ft.register("hdr.nc.$valid", 1)?;

    let rc_valid = ft.register("hdr.p4rp_rc.$valid", 1)?;

    // Program-visible intrinsic metadata.
    named.push(("meta.ingress_port".into(), intr.ingress_port));
    named.push(("meta.pkt_len".into(), intr.pkt_len));

    // ---- parse graph --------------------------------------------------------
    let mut parser = Parser::new();

    let h_rc = parser.add_header(HeaderDef {
        name: "p4rp_rc".into(),
        len_bytes: netpkt::RECIRC_HEADER_LEN,
        fields: vec![
            HeaderField { field: prog_id, bit_offset: 0, bits: 16 },
            HeaderField { field: branch_id, bit_offset: 16, bits: 16 },
            HeaderField { field: har, bit_offset: 32, bits: 32 },
            HeaderField { field: sar, bit_offset: 64, bits: 32 },
            HeaderField { field: mar, bit_offset: 96, bits: 32 },
            HeaderField { field: recirc_id, bit_offset: 128, bits: 8 },
            HeaderField { field: rc_pad, bit_offset: 136, bits: 4 },
            HeaderField { field: intr.egress_valid, bit_offset: 140, bits: 1 },
            HeaderField { field: intr.report_flag, bit_offset: 141, bits: 1 },
            HeaderField { field: intr.return_flag, bit_offset: 142, bits: 1 },
            HeaderField { field: intr.drop_flag, bit_offset: 143, bits: 1 },
            HeaderField { field: intr.egress_spec, bit_offset: 144, bits: 16 },
        ],
        presence: rc_valid,
        checksum_at: None,
        bitmap_bit: bitmap::RECIRC,
    });

    let h_eth = parser.add_header(HeaderDef {
        name: "eth".into(),
        len_bytes: 14,
        fields: vec![
            HeaderField { field: eth_dst, bit_offset: 0, bits: 48 },
            HeaderField { field: eth_src, bit_offset: 48, bits: 48 },
            HeaderField { field: eth_type, bit_offset: 96, bits: 16 },
        ],
        presence: eth_valid,
        checksum_at: None,
        bitmap_bit: bitmap::ETH,
    });

    let h_ipv4 = parser.add_header(HeaderDef {
        name: "ipv4".into(),
        len_bytes: 20,
        fields: vec![
            HeaderField { field: ipv4_ver_ihl, bit_offset: 0, bits: 8 },
            HeaderField { field: ipv4_dscp, bit_offset: 8, bits: 6 },
            HeaderField { field: ipv4_ecn, bit_offset: 14, bits: 2 },
            HeaderField { field: ipv4_len, bit_offset: 16, bits: 16 },
            HeaderField { field: ipv4_id, bit_offset: 32, bits: 16 },
            HeaderField { field: ipv4_frag, bit_offset: 48, bits: 16 },
            HeaderField { field: ipv4_ttl, bit_offset: 64, bits: 8 },
            HeaderField { field: ipv4_proto, bit_offset: 72, bits: 8 },
            HeaderField { field: ipv4_csum, bit_offset: 80, bits: 16 },
            HeaderField { field: ipv4_src, bit_offset: 96, bits: 32 },
            HeaderField { field: ipv4_dst, bit_offset: 128, bits: 32 },
        ],
        presence: ipv4_valid,
        checksum_at: Some(10),
        bitmap_bit: bitmap::IPV4,
    });

    let h_tcp = parser.add_header(HeaderDef {
        name: "tcp".into(),
        len_bytes: 20,
        fields: vec![
            HeaderField { field: l4_src_port, bit_offset: 0, bits: 16 },
            HeaderField { field: l4_dst_port, bit_offset: 16, bits: 16 },
            HeaderField { field: tcp_seq, bit_offset: 32, bits: 32 },
            HeaderField { field: tcp_ack, bit_offset: 64, bits: 32 },
            HeaderField { field: tcp_off_flags, bit_offset: 96, bits: 16 },
            HeaderField { field: tcp_window, bit_offset: 112, bits: 16 },
            HeaderField { field: tcp_csum, bit_offset: 128, bits: 16 },
            HeaderField { field: tcp_urgent, bit_offset: 144, bits: 16 },
        ],
        presence: tcp_valid,
        checksum_at: None,
        bitmap_bit: bitmap::TCP,
    });

    let h_udp = parser.add_header(HeaderDef {
        name: "udp".into(),
        len_bytes: 8,
        fields: vec![
            HeaderField { field: l4_src_port, bit_offset: 0, bits: 16 },
            HeaderField { field: l4_dst_port, bit_offset: 16, bits: 16 },
            HeaderField { field: udp_len, bit_offset: 32, bits: 16 },
            HeaderField { field: udp_csum, bit_offset: 48, bits: 16 },
        ],
        presence: udp_valid,
        checksum_at: None,
        bitmap_bit: bitmap::UDP,
    });

    let h_nc = parser.add_header(HeaderDef {
        name: "nc".into(),
        len_bytes: 13,
        fields: vec![
            HeaderField { field: nc_op, bit_offset: 0, bits: 8 },
            HeaderField { field: nc_key1, bit_offset: 8, bits: 32 },
            HeaderField { field: nc_key2, bit_offset: 40, bits: 32 },
            HeaderField { field: nc_value, bit_offset: 72, bits: 32 },
        ],
        presence: nc_valid,
        checksum_at: None,
        bitmap_bit: bitmap::NC,
    });

    // States, built leaf-first.
    let s_nc = parser.add_state(ParseState {
        header: h_nc,
        select: None,
        transitions: vec![],
        default: NextState::Accept,
    });
    let s_udp = parser.add_state(ParseState {
        header: h_udp,
        select: Some(l4_dst_port),
        transitions: vec![(u64::from(NC_UDP_PORT), 0xffff, NextState::State(s_nc))],
        default: NextState::Accept,
    });
    let s_tcp = parser.add_state(ParseState {
        header: h_tcp,
        select: None,
        transitions: vec![],
        default: NextState::Accept,
    });
    let s_ipv4 = parser.add_state(ParseState {
        header: h_ipv4,
        select: Some(ipv4_proto),
        transitions: vec![
            (6, 0xff, NextState::State(s_tcp)),
            (17, 0xff, NextState::State(s_udp)),
        ],
        default: NextState::Accept,
    });
    let s_eth = parser.add_state(ParseState {
        header: h_eth,
        select: Some(eth_type),
        transitions: vec![(0x0800, 0xffff, NextState::State(s_ipv4))],
        default: NextState::Accept,
    });
    let s_rc = parser.add_state(ParseState {
        header: h_rc,
        select: None,
        transitions: vec![],
        default: NextState::State(s_eth),
    });
    parser.set_start(s_eth);
    parser.set_recirc_start(s_rc);
    // The recirculation header is emitted first when present.
    parser.set_emit_order(vec![h_rc, h_eth, h_ipv4, h_tcp, h_udp, h_nc]);
    // The recirculation block writes the *next* pass id into the header;
    // the working key keeps this pass's value (§4.1.3).
    parser.set_deparse_override(recirc_id, recirc_next);
    parser.validate()?;

    let fields = P4rpFields {
        har,
        sar,
        mar,
        prog_id,
        branch_id,
        recirc_id,
        recirc_next,
        pma,
        salu_flag,
        scratch,
        rc_pad,
        eth_valid,
        ipv4_valid,
        tcp_valid,
        udp_valid,
        nc_valid,
        rc_valid,
        h_eth,
        h_ipv4,
        h_tcp,
        h_udp,
        h_nc,
        h_rc,
        ipv4_src,
        ipv4_dst,
        l4_src_port,
        l4_dst_port,
        ipv4_proto,
        named,
    };
    Ok((ft, parser, fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::{EtherType, EthernetRepr, IpProtocol, Ipv4Repr, Mac, ParsedPacket, UdpRepr};
    use rmt_sim::phv::Phv;
    use std::net::Ipv4Addr;

    fn udp_frame(dst_port: u16) -> Vec<u8> {
        ParsedPacket {
            ethernet: EthernetRepr {
                dst: Mac([1; 6]),
                src: Mac([2; 6]),
                ethertype: EtherType::Ipv4,
            },
            ipv4: Some(Ipv4Repr {
                src_addr: Ipv4Addr::new(10, 1, 2, 3),
                dst_addr: Ipv4Addr::new(10, 4, 5, 6),
                protocol: IpProtocol::Udp,
                ttl: 64,
                dscp: 0,
                ecn: 0,
            }),
            udp: Some(UdpRepr { src_port: 1234, dst_port }),
            tcp: None,
            netcache: None,
            payload_len: 4,
        }
        .emit()
    }

    #[test]
    fn udp_packet_parses_with_bitmap() {
        let (ft, parser, f) = build().unwrap();
        let mut phv = Phv::new(&ft);
        let frame = udp_frame(5000);
        let r = parser.parse(&ft, &frame, &mut phv, false).unwrap();
        let expect = (1u16 << bitmap::ETH) | (1 << bitmap::IPV4) | (1 << bitmap::UDP);
        assert_eq!(r.bitmap, expect);
        assert_eq!(phv.get(f.l4_dst_port), 5000);
        assert_eq!(phv.get(f.ipv4_src), 0x0a010203);
        assert_eq!(phv.get(f.nc_valid), 0);
    }

    #[test]
    fn netcache_port_selects_nc_header() {
        let (ft, parser, f) = build().unwrap();
        let mut frame = udp_frame(NC_UDP_PORT);
        // Replace payload with a cache header.
        frame.truncate(14 + 20 + 8);
        let nc = netpkt::NetCacheRepr { op: netpkt::CacheOp::Read, key: 0x8888, value: 7 };
        frame.extend_from_slice(&nc.emit(0));
        // Fix UDP length.
        let udp_len = (8 + 13) as u16;
        frame[14 + 20 + 4..14 + 20 + 6].copy_from_slice(&udp_len.to_be_bytes());
        let mut phv = Phv::new(&ft);
        let r = parser.parse(&ft, &frame, &mut phv, false).unwrap();
        assert_ne!(r.bitmap & (1 << bitmap::NC), 0);
        assert_eq!(phv.get(f.lookup("hdr.nc.key2").unwrap()), 0x8888);
        assert_eq!(phv.get(f.lookup("hdr.nc.op").unwrap()), 0);
    }

    #[test]
    fn recirc_header_restores_state() {
        let (ft, parser, f) = build().unwrap();
        let intr = ft.intrinsics();
        let inner = udp_frame(5000);
        let rc = netpkt::RecircRepr {
            program_id: 42,
            branch_id: 0b101,
            har: 1,
            sar: 2,
            mar: 3,
            recirc_id: 1,
            flags: 0,
            egress_spec: 9,
        };
        let frame = rc.emit(&inner);
        let mut phv = Phv::new(&ft);
        let r = parser.parse(&ft, &frame, &mut phv, true).unwrap();
        assert_ne!(r.bitmap & (1 << bitmap::RECIRC), 0);
        assert_eq!(phv.get(f.prog_id), 42);
        assert_eq!(phv.get(f.branch_id), 0b101);
        assert_eq!(phv.get(f.har), 1);
        assert_eq!(phv.get(f.sar), 2);
        assert_eq!(phv.get(f.mar), 3);
        assert_eq!(phv.get(f.recirc_id), 1);
        assert_eq!(phv.get(intr.egress_spec), 9);
    }

    #[test]
    fn deparse_roundtrips_udp_frame() {
        let (ft, parser, _) = build().unwrap();
        let frame = udp_frame(5000);
        let mut phv = Phv::new(&ft);
        let r = parser.parse(&ft, &frame, &mut phv, false).unwrap();
        let out = parser.deparse(&ft, &phv, &frame[r.payload_offset..]);
        assert_eq!(out, frame, "unmodified parse→deparse must be identity");
    }

    #[test]
    fn recirc_push_via_presence() {
        let (ft, parser, f) = build().unwrap();
        let frame = udp_frame(5000);
        let mut phv = Phv::new(&ft);
        let r = parser.parse(&ft, &frame, &mut phv, false).unwrap();
        phv.set(&ft, f.rc_valid, 1);
        phv.set(&ft, f.prog_id, 7);
        // The header carries the *next*-pass id (deparse override); the
        // working key stays at the current pass (§4.1.3).
        phv.set(&ft, f.recirc_next, 1);
        let out = parser.deparse(&ft, &phv, &frame[r.payload_offset..]);
        assert_eq!(out.len(), frame.len() + netpkt::RECIRC_HEADER_LEN);
        let hdr = netpkt::RecircHeader::new_checked(&out).unwrap();
        assert_eq!(hdr.program_id(), 7);
        assert_eq!(hdr.recirc_id(), 1);
        assert_eq!(hdr.payload(), &frame[..]);
    }

    #[test]
    fn tcp_and_udp_ports_alias() {
        let (_, _, f) = build().unwrap();
        assert_eq!(f.lookup("hdr.tcp.src_port"), f.lookup("hdr.udp.src_port"));
        assert_eq!(f.lookup("hdr.udp.dst_port"), Some(f.l4_dst_port));
    }

    #[test]
    fn field_universe_contains_expected_names() {
        let (_, _, f) = build().unwrap();
        for name in [
            "hdr.eth.dst",
            "hdr.ipv4.dst",
            "hdr.ipv4.ecn",
            "hdr.udp.dst_port",
            "hdr.nc.op",
            "hdr.nc.value",
            "meta.ingress_port",
        ] {
            assert!(f.lookup(name).is_some(), "missing field {name}");
        }
        assert!(f.lookup("hdr.bogus").is_none());
    }

    #[test]
    fn num_parse_paths_is_five() {
        let (_, parser, _) = build().unwrap();
        // eth, eth+ipv4, +tcp, +udp, +udp+nc.
        assert_eq!(parser.num_paths(), 5);
    }
}
