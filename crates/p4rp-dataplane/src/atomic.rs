//! The atomic operations pre-installed in every RPB (§4.1.2, §4.2).
//!
//! Each atomic operation is one table action; its operands come from the
//! entry's action data, so one pre-installed action serves every program
//! that uses that operation. Header-interaction operations must be
//! enumerated per (field × register) combination — that enumeration is
//! exactly the "operation capacity" pressure the paper's pseudo-primitive
//! design responds to, and it is what fills the VLIW budget (Figure 10).
//!
//! Memory operations use the SALU-flag pairing of §4.1.2: two memory
//! operations share one action, selected by the `salu_flag` PHV bit that
//! the offset step sets. Four pairs cover the seven memory primitives of
//! Table 3:
//!
//! | pair       | flag = 0 | flag = 1 |
//! |------------|----------|----------|
//! | `ReadWrite`| MEMREAD  | MEMWRITE |
//! | `AddSub`   | MEMADD   | MEMSUB   |
//! | `AndOr`    | MEMAND   | MEMOR    |
//! | `MaxOnly`  | MEMMAX   | MEMMAX   |

use crate::fields::P4rpFields;
use p4rp_lang::Reg;
use rmt_sim::action::{ActionDef, AluFunc, HashCall, HashInput, Operand, SaluCall, VliwOp};
use rmt_sim::hash::{CrcSpec, CRC32};
use rmt_sim::phv::{FieldId, FieldTable};
use rmt_sim::salu::{SaluCond, SaluExpr, SaluInstr, SaluOutput};
use std::collections::HashMap;

/// The seven memory primitives of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpKind {
    /// Add.
    Add,
    /// Sub.
    Sub,
    /// And.
    And,
    /// Or.
    Or,
    /// Read.
    Read,
    /// Write.
    Write,
    /// Max.
    Max,
}

impl MemOpKind {
    /// The SALU instruction implementing this primitive.
    pub fn instr(self) -> SaluInstr {
        match self {
            // MEMADD: mem += sar; sar = new mem.
            MemOpKind::Add => SaluInstr {
                cond: SaluCond::Always,
                update_true: Some(SaluExpr::MemPlusOp),
                update_false: None,
                output: SaluOutput::NewMem,
            },
            // MEMSUB: mem -= sar; sar = new mem.
            MemOpKind::Sub => SaluInstr {
                cond: SaluCond::Always,
                update_true: Some(SaluExpr::MemMinusOp),
                update_false: None,
                output: SaluOutput::NewMem,
            },
            // MEMAND: mem &= sar; sar = new mem.
            MemOpKind::And => SaluInstr {
                cond: SaluCond::Always,
                update_true: Some(SaluExpr::MemAndOp),
                update_false: None,
                output: SaluOutput::NewMem,
            },
            // MEMOR: sar = old mem; mem |= sar (Table 3 lists the read
            // before the update — the Bloom-filter existence-check idiom).
            MemOpKind::Or => SaluInstr {
                cond: SaluCond::Always,
                update_true: Some(SaluExpr::MemOrOp),
                update_false: None,
                output: SaluOutput::OldMem,
            },
            MemOpKind::Read => SaluInstr::READ,
            MemOpKind::Write => SaluInstr::WRITE,
            // MEMMAX: mem = sar if sar > mem.
            MemOpKind::Max => SaluInstr {
                cond: SaluCond::OpGtMem,
                update_true: Some(SaluExpr::Op),
                update_false: None,
                output: SaluOutput::None,
            },
        }
    }

    /// The SALU pair hosting this primitive and the flag value selecting it.
    pub fn pair(self) -> (MemPair, bool) {
        match self {
            MemOpKind::Read => (MemPair::ReadWrite, false),
            MemOpKind::Write => (MemPair::ReadWrite, true),
            MemOpKind::Add => (MemPair::AddSub, false),
            MemOpKind::Sub => (MemPair::AddSub, true),
            MemOpKind::And => (MemPair::AndOr, false),
            MemOpKind::Or => (MemPair::AndOr, true),
            MemOpKind::Max => (MemPair::MaxOnly, false),
        }
    }
}

/// SALU instruction pairs selected by the SALU flag (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemPair {
    /// ReadWrite.
    ReadWrite,
    /// AddSub.
    AddSub,
    /// AndOr.
    AndOr,
    /// MaxOnly.
    MaxOnly,
}

impl MemPair {
    /// `ALL`.
    pub const ALL: [MemPair; 4] = [MemPair::ReadWrite, MemPair::AddSub, MemPair::AndOr, MemPair::MaxOnly];

    fn instrs(self) -> (SaluInstr, SaluInstr) {
        match self {
            MemPair::ReadWrite => (MemOpKind::Read.instr(), MemOpKind::Write.instr()),
            MemPair::AddSub => (MemOpKind::Add.instr(), MemOpKind::Sub.instr()),
            MemPair::AndOr => (MemOpKind::And.instr(), MemOpKind::Or.instr()),
            MemPair::MaxOnly => (MemOpKind::Max.instr(), MemOpKind::Max.instr()),
        }
    }
}

/// The register-to-register ALU operations (6 ops × 6 ordered register
/// pairs = 36 pre-installed actions — the combinatorial cost §4.1.2
/// discusses when justifying three registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluRROp {
    /// Add.
    Add,
    /// And.
    And,
    /// Or.
    Or,
    /// Max.
    Max,
    /// Min.
    Min,
    /// Xor.
    Xor,
}

impl AluRROp {
    /// `ALL`.
    pub const ALL: [AluRROp; 6] =
        [AluRROp::Add, AluRROp::And, AluRROp::Or, AluRROp::Max, AluRROp::Min, AluRROp::Xor];

    fn func(self) -> AluFunc {
        match self {
            AluRROp::Add => AluFunc::Add,
            AluRROp::And => AluFunc::And,
            AluRROp::Or => AluFunc::Or,
            AluRROp::Max => AluFunc::Max,
            AluRROp::Min => AluFunc::Min,
            AluRROp::Xor => AluFunc::Xor,
        }
    }
}

/// The identity of one pre-installed atomic operation. Entries reference an
/// operation plus action data (immediates, masks, offsets, ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicAction {
    /// reg = field.
    /// Extract.
    Extract { field: FieldId, reg: Reg },
    /// field = reg.
    /// Modify.
    Modify { field: FieldId, reg: Reg },
    /// har = crc32(har).
    HashHar,
    /// har = crc32(5-tuple).
    Hash5Tuple,
    /// mar = crc16(har) & data\[0\]  (mask step fused, §4.1.2).
    HashHarMem,
    /// mar = crc16(5-tuple) & data\[0\].
    Hash5TupleMem,
    /// branch_id |= data\[0\]  (enter a case's branch-bit range).
    SetBranch,
    /// pma = mar + data\[0\]; salu_flag = data\[1\]  (the offset step).
    MemOffset,
    /// SALU pair on this stage's memory at address `pma`.
    Mem(MemPair),
    /// reg = data\[0\].
    LoadI(Reg),
    /// a = op(a, b).
    /// AluRR.
    AluRR { op: AluRROp, a: Reg, b: Reg },
    /// scratch = reg (backup of the supportive register, Figure 4(b)).
    Backup(Reg),
    /// reg = scratch (restore after pseudo-primitive expansion).
    Restore(Reg),
    /// egress_spec = data\[0\].
    Forward,
    /// mcast_group = data\[0\] (§7 multicast extension).
    Multicast,
    /// Drop.
    Drop,
    /// Return.
    Return,
    /// Report.
    Report,
    /// Recirculation-block action: mark for another pass.
    Recirculate,
    /// Nop.
    Nop,
}

/// One operation instance: the pre-installed action plus its action data.
#[derive(Debug, Clone, PartialEq)]
pub struct RpbOp {
    /// Action.
    pub action: AtomicAction,
    /// Data.
    pub data: Vec<u64>,
}

impl RpbOp {
    /// Extract.
    pub fn extract(field: FieldId, reg: Reg) -> RpbOp {
        RpbOp { action: AtomicAction::Extract { field, reg }, data: vec![] }
    }

    /// Modify.
    pub fn modify(field: FieldId, reg: Reg) -> RpbOp {
        RpbOp { action: AtomicAction::Modify { field, reg }, data: vec![] }
    }

    /// Hash har.
    pub fn hash_har() -> RpbOp {
        RpbOp { action: AtomicAction::HashHar, data: vec![] }
    }

    /// Hash 5 tuple.
    pub fn hash_5_tuple() -> RpbOp {
        RpbOp { action: AtomicAction::Hash5Tuple, data: vec![] }
    }

    /// Hash har mem.
    pub fn hash_har_mem(mask: u32) -> RpbOp {
        RpbOp { action: AtomicAction::HashHarMem, data: vec![u64::from(mask)] }
    }

    /// Hash 5 tuple mem.
    pub fn hash_5_tuple_mem(mask: u32) -> RpbOp {
        RpbOp { action: AtomicAction::Hash5TupleMem, data: vec![u64::from(mask)] }
    }

    /// Set branch.
    pub fn set_branch(bits: u16) -> RpbOp {
        RpbOp { action: AtomicAction::SetBranch, data: vec![u64::from(bits)] }
    }

    /// Mem offset.
    pub fn mem_offset(offset: u32, salu_flag: bool) -> RpbOp {
        RpbOp { action: AtomicAction::MemOffset, data: vec![u64::from(offset), u64::from(salu_flag)] }
    }

    /// Mem.
    pub fn mem(kind: MemOpKind) -> RpbOp {
        let (pair, _) = kind.pair();
        RpbOp { action: AtomicAction::Mem(pair), data: vec![] }
    }

    /// Loadi.
    pub fn loadi(reg: Reg, imm: u32) -> RpbOp {
        RpbOp { action: AtomicAction::LoadI(reg), data: vec![u64::from(imm)] }
    }

    /// Alu rr.
    pub fn alu_rr(op: AluRROp, a: Reg, b: Reg) -> RpbOp {
        RpbOp { action: AtomicAction::AluRR { op, a, b }, data: vec![] }
    }

    /// Backup.
    pub fn backup(reg: Reg) -> RpbOp {
        RpbOp { action: AtomicAction::Backup(reg), data: vec![] }
    }

    /// Restore.
    pub fn restore(reg: Reg) -> RpbOp {
        RpbOp { action: AtomicAction::Restore(reg), data: vec![] }
    }

    /// Forward.
    pub fn forward(port: u16) -> RpbOp {
        RpbOp { action: AtomicAction::Forward, data: vec![u64::from(port)] }
    }

    /// Multicast.
    pub fn multicast(group: u16) -> RpbOp {
        RpbOp { action: AtomicAction::Multicast, data: vec![u64::from(group)] }
    }

    /// Drop.
    pub fn drop() -> RpbOp {
        RpbOp { action: AtomicAction::Drop, data: vec![] }
    }

    /// Return.
    pub fn return_() -> RpbOp {
        RpbOp { action: AtomicAction::Return, data: vec![] }
    }

    /// Report.
    pub fn report() -> RpbOp {
        RpbOp { action: AtomicAction::Report, data: vec![] }
    }

    /// Nop.
    pub fn nop() -> RpbOp {
        RpbOp { action: AtomicAction::Nop, data: vec![] }
    }
}

/// The pre-installed action catalogue of one RPB: the ordered action list
/// (indices are the table's action ids) plus the reverse map entries use.
#[derive(Debug, Clone)]
pub struct Catalogue {
    /// Actions.
    pub actions: Vec<ActionDef>,
    index: HashMap<AtomicAction, usize>,
}

impl Catalogue {
    /// Action id.
    pub fn action_id(&self, a: AtomicAction) -> Option<usize> {
        self.index.get(&a).copied()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Total VLIW micro-op slots the catalogue consumes in one stage.
    pub fn vliw_slots(&self) -> usize {
        self.actions.iter().map(|a| a.vliw_slots()).sum()
    }
}

/// Build the catalogue for an RPB. `ingress` RPBs additionally install the
/// forwarding operations (egress RPBs cannot affect the traffic manager —
/// allocation constraint (4)). `mem_crc` is the stage's hash-unit
/// polynomial for memory addressing: the prototype wires a different CRC16
/// to each stage (crc_16_buypass / mcrf4xx / aug_ccitt / dds_110, §6.4),
/// which is what makes multi-row sketches' rows independent.
pub fn build_catalogue(ft: &FieldTable, f: &P4rpFields, ingress: bool, mem_crc: CrcSpec) -> Catalogue {
    let intr = ft.intrinsics();
    let mut actions: Vec<ActionDef> = Vec::new();
    let mut index = HashMap::new();
    let mut push = |key: AtomicAction, def: ActionDef, actions: &mut Vec<ActionDef>| {
        index.insert(key, actions.len());
        actions.push(def);
    };

    // Header interaction: every program-visible field × register, both
    // directions (metadata fields are extract-only).
    let mut seen: Vec<FieldId> = Vec::new();
    for (name, field) in &f.named {
        if seen.contains(field) {
            continue;
        }
        seen.push(*field);
        let writable = name.starts_with("hdr.");
        for reg in Reg::ALL {
            push(
                AtomicAction::Extract { field: *field, reg },
                ActionDef {
                    name: format!("extract[{name}->{}]", reg.name()),
                    ops: vec![VliwOp::set(f.reg(reg), Operand::Field(*field))],
                    hash: None,
                    salu: None,
                },
                &mut actions,
            );
            if writable {
                push(
                    AtomicAction::Modify { field: *field, reg },
                    ActionDef {
                        name: format!("modify[{name}<-{}]", reg.name()),
                        ops: vec![VliwOp::set(*field, Operand::Field(f.reg(reg)))],
                        hash: None,
                        salu: None,
                    },
                    &mut actions,
                );
            }
        }
    }

    // Hash operations.
    push(
        AtomicAction::HashHar,
        ActionDef {
            name: "hash[har]".into(),
            ops: vec![],
            hash: Some(HashCall {
                spec: CRC32,
                input: HashInput::Fields(vec![f.har]),
                dst: f.har,
                mask: None,
            }),
            salu: None,
        },
        &mut actions,
    );
    push(
        AtomicAction::Hash5Tuple,
        ActionDef {
            name: "hash[5tuple]".into(),
            ops: vec![],
            hash: Some(HashCall {
                spec: CRC32,
                input: HashInput::Fields(f.five_tuple()),
                dst: f.har,
                mask: None,
            }),
            salu: None,
        },
        &mut actions,
    );
    push(
        AtomicAction::HashHarMem,
        ActionDef {
            name: "hash_mem[har]".into(),
            ops: vec![],
            hash: Some(HashCall {
                spec: mem_crc,
                input: HashInput::Fields(vec![f.har]),
                dst: f.mar,
                mask: Some(Operand::Arg(0)),
            }),
            salu: None,
        },
        &mut actions,
    );
    push(
        AtomicAction::Hash5TupleMem,
        ActionDef {
            name: "hash_mem[5tuple]".into(),
            ops: vec![],
            hash: Some(HashCall {
                spec: mem_crc,
                input: HashInput::Fields(f.five_tuple()),
                dst: f.mar,
                mask: Some(Operand::Arg(0)),
            }),
            salu: None,
        },
        &mut actions,
    );

    // Conditional branch: enter a case by OR-ing its branch bits.
    push(
        AtomicAction::SetBranch,
        ActionDef {
            name: "set_branch".into(),
            ops: vec![VliwOp {
                dst: f.branch_id,
                func: AluFunc::Or,
                a: Operand::Field(f.branch_id),
                b: Operand::Arg(0),
            }],
            hash: None,
            salu: None,
        },
        &mut actions,
    );

    // Address translation offset step + SALU flag (§4.1.2): one action.
    push(
        AtomicAction::MemOffset,
        ActionDef {
            name: "mem_offset".into(),
            ops: vec![
                VliwOp {
                    dst: f.pma,
                    func: AluFunc::Add,
                    a: Operand::Field(f.mar),
                    b: Operand::Arg(0),
                },
                VliwOp::set(f.salu_flag, Operand::Arg(1)),
            ],
            hash: None,
            salu: None,
        },
        &mut actions,
    );

    // Memory pairs.
    for pair in MemPair::ALL {
        let (a, b) = pair.instrs();
        push(
            AtomicAction::Mem(pair),
            ActionDef {
                name: format!("mem[{pair:?}]"),
                ops: vec![],
                hash: None,
                salu: Some(SaluCall {
                    array: 0,
                    addr: Operand::Field(f.pma),
                    operand: Operand::Field(f.sar),
                    instr: a,
                    alt_instr: Some(b),
                    select_flag: Some(f.salu_flag),
                    output: Some(f.sar),
                }),
            },
            &mut actions,
        );
    }

    // Immediates and register-register ALU ops.
    for reg in Reg::ALL {
        push(
            AtomicAction::LoadI(reg),
            ActionDef {
                name: format!("loadi[{}]", reg.name()),
                ops: vec![VliwOp::set(f.reg(reg), Operand::Arg(0))],
                hash: None,
                salu: None,
            },
            &mut actions,
        );
    }
    for op in AluRROp::ALL {
        for a in Reg::ALL {
            for b in Reg::ALL {
                if a == b {
                    continue;
                }
                push(
                    AtomicAction::AluRR { op, a, b },
                    ActionDef {
                        name: format!("alu[{op:?} {} {}]", a.name(), b.name()),
                        ops: vec![VliwOp {
                            dst: f.reg(a),
                            func: op.func(),
                            a: Operand::Field(f.reg(a)),
                            b: Operand::Field(f.reg(b)),
                        }],
                        hash: None,
                        salu: None,
                    },
                    &mut actions,
                );
            }
        }
    }

    // Supportive-register backup/restore (Figure 4(b)).
    for reg in Reg::ALL {
        push(
            AtomicAction::Backup(reg),
            ActionDef {
                name: format!("backup[{}]", reg.name()),
                ops: vec![VliwOp::set(f.scratch, Operand::Field(f.reg(reg)))],
                hash: None,
                salu: None,
            },
            &mut actions,
        );
        push(
            AtomicAction::Restore(reg),
            ActionDef {
                name: format!("restore[{}]", reg.name()),
                ops: vec![VliwOp::set(f.reg(reg), Operand::Field(f.scratch))],
                hash: None,
                salu: None,
            },
            &mut actions,
        );
    }

    // Forwarding (ingress RPBs only).
    if ingress {
        push(
            AtomicAction::Forward,
            ActionDef {
                name: "forward".into(),
                ops: vec![
                    VliwOp::set(intr.egress_spec, Operand::Arg(0)),
                    VliwOp::set(intr.egress_valid, Operand::Const(1)),
                ],
                hash: None,
                salu: None,
            },
            &mut actions,
        );
        push(
            AtomicAction::Multicast,
            ActionDef {
                name: "multicast".into(),
                ops: vec![VliwOp::set(intr.mcast_group, Operand::Arg(0))],
                hash: None,
                salu: None,
            },
            &mut actions,
        );
        push(
            AtomicAction::Drop,
            ActionDef {
                name: "drop".into(),
                ops: vec![VliwOp::set(intr.drop_flag, Operand::Const(1))],
                hash: None,
                salu: None,
            },
            &mut actions,
        );
        push(
            AtomicAction::Return,
            ActionDef {
                name: "return".into(),
                ops: vec![VliwOp::set(intr.return_flag, Operand::Const(1))],
                hash: None,
                salu: None,
            },
            &mut actions,
        );
        push(
            AtomicAction::Report,
            ActionDef {
                name: "report".into(),
                ops: vec![VliwOp::set(intr.report_flag, Operand::Const(1))],
                hash: None,
                salu: None,
            },
            &mut actions,
        );
    }

    push(AtomicAction::Nop, ActionDef::noop("nop"), &mut actions);

    Catalogue { actions, index }
}

/// Build the recirculation-block action list: `[recirculate, nop]`.
pub fn build_recirc_actions(ft: &FieldTable, f: &P4rpFields) -> (Vec<ActionDef>, usize) {
    let intr = ft.intrinsics();
    let recirc = ActionDef {
        name: "recirculate".into(),
        ops: vec![
            VliwOp::set(intr.recirc_flag, Operand::Const(1)),
            // Rewrite the *header's* recirculation id (deparse override);
            // the working key keeps this pass's value so egress RPBs of
            // this pass still match.
            VliwOp {
                dst: f.recirc_next,
                func: AluFunc::Add,
                a: Operand::Field(f.recirc_id),
                b: Operand::Const(1),
            },
            VliwOp::set(f.rc_valid, Operand::Const(1)),
        ],
        hash: None,
        salu: None,
    };
    (vec![recirc, ActionDef::noop("nop")], 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields;

    fn catalogue(ingress: bool) -> (FieldTable, P4rpFields, Catalogue) {
        let (ft, _, f) = fields::build().unwrap();
        let cat = build_catalogue(&ft, &f, ingress, rmt_sim::hash::CRC16_BUYPASS);
        (ft, f, cat)
    }

    #[test]
    fn every_memop_maps_to_a_pair() {
        for kind in [
            MemOpKind::Add,
            MemOpKind::Sub,
            MemOpKind::And,
            MemOpKind::Or,
            MemOpKind::Read,
            MemOpKind::Write,
            MemOpKind::Max,
        ] {
            let (pair, flag) = kind.pair();
            let (a, b) = pair.instrs();
            let selected = if flag { b } else { a };
            assert_eq!(selected, kind.instr(), "{kind:?}");
        }
    }

    #[test]
    fn ingress_has_forwarding_egress_does_not() {
        let (_, _, ig) = catalogue(true);
        let (_, _, eg) = catalogue(false);
        assert!(ig.action_id(AtomicAction::Forward).is_some());
        assert!(ig.action_id(AtomicAction::Drop).is_some());
        assert!(eg.action_id(AtomicAction::Forward).is_none());
        assert!(eg.action_id(AtomicAction::Drop).is_none());
        assert_eq!(ig.len(), eg.len() + 5, "forward/multicast/drop/return/report");
    }

    #[test]
    fn catalogue_has_all_alu_combinations() {
        let (_, _, cat) = catalogue(true);
        let mut count = 0;
        for op in AluRROp::ALL {
            for a in Reg::ALL {
                for b in Reg::ALL {
                    if a != b {
                        assert!(cat.action_id(AtomicAction::AluRR { op, a, b }).is_some());
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(count, 36, "6 ops × 6 ordered register pairs");
    }

    #[test]
    fn extract_covers_every_field_and_register() {
        let (_, f, cat) = catalogue(true);
        for (name, field) in &f.named {
            for reg in Reg::ALL {
                assert!(
                    cat.action_id(AtomicAction::Extract { field: *field, reg }).is_some(),
                    "missing extract for {name}"
                );
            }
        }
        // Metadata is extract-only.
        let port = f.lookup("meta.ingress_port").unwrap();
        assert!(cat.action_id(AtomicAction::Modify { field: port, reg: Reg::Har }).is_none());
        let dst = f.lookup("hdr.ipv4.dst").unwrap();
        assert!(cat.action_id(AtomicAction::Modify { field: dst, reg: Reg::Sar }).is_some());
    }

    #[test]
    fn vliw_budget_nearly_full() {
        // The paper: "P4runpro uses almost all the VLIW to implement atomic
        // operations". The catalogue must land close to (but within) the
        // per-stage budget.
        let (_, _, cat) = catalogue(true);
        let slots = cat.vliw_slots();
        let budget = rmt_sim::pipeline::StageLimits::default().vliw_slots;
        assert!(slots <= budget, "catalogue {slots} exceeds stage budget {budget}");
        assert!(
            slots as f64 >= budget as f64 * 0.85,
            "catalogue {slots} should nearly fill budget {budget}"
        );
    }

    #[test]
    fn actions_unique() {
        let (_, _, cat) = catalogue(true);
        // The reverse index must be 1:1 with the action list.
        assert_eq!(cat.index.len(), cat.actions.len());
    }

    #[test]
    fn rpb_op_constructors_shape_data() {
        assert_eq!(RpbOp::loadi(Reg::Mar, 512).data, vec![512]);
        assert_eq!(RpbOp::hash_5_tuple_mem(0x3ff).data, vec![0x3ff]);
        assert_eq!(RpbOp::mem_offset(4096, true).data, vec![4096, 1]);
        assert_eq!(RpbOp::mem(MemOpKind::Write).action, AtomicAction::Mem(MemPair::ReadWrite));
        assert_eq!(RpbOp::forward(32).data, vec![32]);
    }
}
