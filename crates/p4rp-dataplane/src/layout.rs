//! Physical layout constants of the P4runpro data plane (§5 of the paper)
//! and the logical-RPB coordinate system used by the allocator.
//!
//! The prototype provisions a single Tofino pipeline as:
//!
//! * ingress stage 0 — the initialization block (K filtering tables, one
//!   per parse path);
//! * ingress stages 1–10 — RPBs 1..=10 (the ingress RPBs, which may execute
//!   forwarding primitives);
//! * ingress stage 11 — the recirculation block;
//! * egress stages 0–11 — RPBs 11..=22.
//!
//! With recirculation, the allocator works over *logical* RPBs: logical
//! index `l ∈ 1..=M*(R+1)` denotes physical RPB `((l-1) % M) + 1` on pass
//! `(l-1) / M`.

use rmt_sim::pipeline::Gress;
use rmt_sim::switch::{ArrayRef, TableRef};

/// Ingress RPB count (`N` in the allocation model).
pub const NUM_INGRESS_RPBS: usize = 10;
/// Egress RPB count.
pub const NUM_EGRESS_RPBS: usize = 12;
/// Total physical RPBs (`M` in the allocation model).
pub const NUM_RPBS: usize = NUM_INGRESS_RPBS + NUM_EGRESS_RPBS;

/// Entries per RPB table.
pub const RPB_TABLE_SIZE: usize = 2048;
/// 32-bit buckets of stateful memory per RPB.
pub const RPB_MEM_SIZE: u32 = 65_536;
/// Entries of the unified initialization-block filtering table (SRAM-
/// backed algorithmic TCAM — sized for the thousands of concurrent
/// programs of §6.2.3).
pub const INIT_TABLE_SIZE: usize = 8192;
/// Entries in the recirculation block table.
pub const RECIRC_TABLE_SIZE: usize = 8192;

/// Ingress pipeline stage count (init + 10 RPBs + recirc).
pub const INGRESS_STAGES: usize = 1 + NUM_INGRESS_RPBS + 1;
/// Egress pipeline stage count.
pub const EGRESS_STAGES: usize = NUM_EGRESS_RPBS;

/// Ingress stage index of the initialization block.
pub const INIT_STAGE: usize = 0;
/// Ingress stage index of the recirculation block.
pub const RECIRC_STAGE: usize = INGRESS_STAGES - 1;

/// A physical RPB, numbered 1..=22 (1..=10 ingress, 11..=22 egress).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RpbId(pub u8);

impl RpbId {
    /// All.
    pub fn all() -> impl Iterator<Item = RpbId> {
        (1..=NUM_RPBS as u8).map(RpbId)
    }

    /// Is valid.
    pub fn is_valid(self) -> bool {
        (1..=NUM_RPBS as u8).contains(&self.0)
    }

    /// Ingress RPBs can execute forwarding primitives (constraint (4)).
    pub fn is_ingress(self) -> bool {
        (1..=NUM_INGRESS_RPBS as u8).contains(&self.0)
    }

    /// The pipeline stage hosting this RPB.
    pub fn stage(self) -> (Gress, usize) {
        debug_assert!(self.is_valid());
        if self.is_ingress() {
            // RPB 1 lives in ingress stage 1 (stage 0 is the init block).
            (Gress::Ingress, usize::from(self.0))
        } else {
            (Gress::Egress, usize::from(self.0) - NUM_INGRESS_RPBS - 1)
        }
    }

    /// The RPB's match-action table (always table 0 of its stage).
    pub fn table_ref(self) -> TableRef {
        let (gress, stage) = self.stage();
        TableRef { gress, stage, table: 0 }
    }

    /// The RPB's stateful memory (always array 0 of its stage).
    pub fn array_ref(self) -> ArrayRef {
        let (gress, stage) = self.stage();
        ArrayRef { gress, stage, array: 0 }
    }
}

/// A logical RPB: a physical RPB on a given recirculation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalRpb(pub u16);

impl LogicalRpb {
    /// Construct with defaults appropriate to the type.
    pub fn new(pass: u8, rpb: RpbId) -> LogicalRpb {
        debug_assert!(rpb.is_valid());
        LogicalRpb(u16::from(pass) * NUM_RPBS as u16 + u16::from(rpb.0))
    }

    /// From index.
    pub fn from_index(index: u16) -> LogicalRpb {
        LogicalRpb(index)
    }

    /// Recirculation pass (0 = first traversal).
    pub fn pass(self) -> u8 {
        ((self.0 - 1) / NUM_RPBS as u16) as u8
    }

    /// Rpb.
    pub fn rpb(self) -> RpbId {
        RpbId((((self.0 - 1) % NUM_RPBS as u16) + 1) as u8)
    }

    /// Is ingress.
    pub fn is_ingress(self) -> bool {
        self.rpb().is_ingress()
    }

    /// Maximum logical index for `r` allowed recirculation iterations.
    pub fn max_index(max_recirc: u8) -> u16 {
        (NUM_RPBS * (usize::from(max_recirc) + 1)) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpb_partition() {
        assert_eq!(RpbId::all().count(), 22);
        assert!(RpbId(1).is_ingress());
        assert!(RpbId(10).is_ingress());
        assert!(!RpbId(11).is_ingress());
        assert!(!RpbId(22).is_ingress());
        assert!(!RpbId(0).is_valid());
        assert!(!RpbId(23).is_valid());
    }

    #[test]
    fn stage_mapping() {
        assert_eq!(RpbId(1).stage(), (Gress::Ingress, 1));
        assert_eq!(RpbId(10).stage(), (Gress::Ingress, 10));
        assert_eq!(RpbId(11).stage(), (Gress::Egress, 0));
        assert_eq!(RpbId(22).stage(), (Gress::Egress, 11));
        // Init and recirc blocks surround the ingress RPBs.
        assert_eq!(INIT_STAGE, 0);
        assert_eq!(RECIRC_STAGE, 11);
    }

    #[test]
    fn logical_rpb_roundtrip() {
        for pass in 0..=2u8 {
            for rpb in RpbId::all() {
                let l = LogicalRpb::new(pass, rpb);
                assert_eq!(l.pass(), pass);
                assert_eq!(l.rpb(), rpb);
            }
        }
    }

    #[test]
    fn logical_index_contiguous() {
        assert_eq!(LogicalRpb::new(0, RpbId(1)).0, 1);
        assert_eq!(LogicalRpb::new(0, RpbId(22)).0, 22);
        assert_eq!(LogicalRpb::new(1, RpbId(1)).0, 23);
        assert_eq!(LogicalRpb::max_index(1), 44);
        assert_eq!(LogicalRpb::max_index(0), 22);
    }
}
