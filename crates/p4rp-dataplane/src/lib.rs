//! # p4rp-dataplane — the fixed P4runpro data plane (§4.1 of the paper)
//!
//! Installs the runtime-programmable data plane onto the [`rmt_sim`]
//! switch: the three PHV registers and control flags, the fixed parser,
//! the initialization block (per-parse-path filtering tables), 10 ingress
//! + 12 egress runtime programming blocks (RPBs) with their pre-installed
//!   atomic-operation catalogues and 65,536-bucket memories, and the
//!   recirculation block.
//!
//! After [`provision::provision`] the data plane never changes again:
//! every program deployment is entry/register traffic produced by the
//! `p4rp-compiler` crate and applied by the `p4rp-ctl` control plane.

pub mod atomic;
pub mod encode;
pub mod fields;
pub mod layout;
pub mod provision;

pub use atomic::{AluRROp, AtomicAction, Catalogue, MemOpKind, MemPair, RpbOp};
pub use encode::{
    encode_filter_entry, encode_recirc_entry, encode_rpb_entry, init, recirc_key_spec,
    rpb_key_spec, FilterEntrySpec, RpbEntrySpec,
};
pub use fields::{P4rpFields, NC_UDP_PORT};
pub use layout::*;
pub use provision::{provision, Dataplane};
