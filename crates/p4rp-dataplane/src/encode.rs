//! Entry encoding: from compiler-level specifications to concrete
//! `rmt-sim` table entries.
//!
//! Three entry families exist in the P4runpro data plane:
//!
//! * **RPB entries** — keyed `(program id, branch id, recirculation id,
//!   har, sar, mar)`, all ternary ("all the tables in P4runpro use ternary
//!   match and have redundant keys", §7), selecting one pre-installed
//!   atomic operation;
//! * **initialization-block filter entries** — one filtering table per
//!   parse path (§4.1.1), keyed on the parse-path bitmap, the
//!   recirculation-header presence bit (so recirculated packets keep the
//!   program id restored from their state header), the ingress port, and
//!   the path's header fields;
//! * **recirculation-block entries** — keyed `(program id, recirculation
//!   id)`, marking packets of multi-pass programs for another traversal.

use crate::atomic::{Catalogue, RpbOp};
use crate::fields::{bitmap, P4rpFields};
use p4rp_lang::RegConds;
use rmt_sim::error::{SimError, SimResult};
use rmt_sim::phv::{FieldId, FieldTable};
use rmt_sim::table::{KeySpec, MatchKind, MatchValue, TableEntry};

/// Build the RPB table key spec: `(prog_id, branch_id, recirc_id, har,
/// sar, mar)`, all ternary.
pub fn rpb_key_spec(f: &P4rpFields) -> KeySpec {
    KeySpec::new(vec![
        (f.prog_id, MatchKind::Ternary),
        (f.branch_id, MatchKind::Ternary),
        (f.recirc_id, MatchKind::Ternary),
        (f.har, MatchKind::Ternary),
        (f.sar, MatchKind::Ternary),
        (f.mar, MatchKind::Ternary),
    ])
}

/// A compiler-produced RPB entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RpbEntrySpec {
    /// Prog id.
    pub prog_id: u16,
    /// Hierarchical branch condition `(value, mask)` — see the compiler's
    /// branch-bit allocation.
    pub branch: (u16, u16),
    /// The recirculation pass this entry belongs to.
    pub recirc_id: u8,
    /// Register conditions (only BRANCH case entries constrain these).
    pub regs: RegConds,
    /// Priority among entries of the same program/RPB (case order).
    pub priority: i32,
    /// Op.
    pub op: RpbOp,
}

impl RpbEntrySpec {
    /// A plain (non-branch) entry: registers don't-care, priority 0.
    pub fn plain(prog_id: u16, branch: (u16, u16), recirc_id: u8, op: RpbOp) -> RpbEntrySpec {
        RpbEntrySpec { prog_id, branch, recirc_id, regs: RegConds::default(), priority: 0, op }
    }
}

fn reg_match(c: Option<(u32, u32)>) -> MatchValue {
    match c {
        None => MatchValue::ANY,
        Some((v, m)) => MatchValue::Ternary { value: u64::from(v), mask: u64::from(m) },
    }
}

/// Encode an RPB entry against the RPB's action catalogue.
pub fn encode_rpb_entry(cat: &Catalogue, spec: &RpbEntrySpec) -> SimResult<TableEntry> {
    let action = cat.action_id(spec.op.action).ok_or_else(|| {
        SimError::Config(format!("operation {:?} is not installed in this RPB", spec.op.action))
    })?;
    Ok(TableEntry {
        matches: vec![
            MatchValue::Ternary { value: u64::from(spec.prog_id), mask: 0xffff },
            MatchValue::Ternary { value: u64::from(spec.branch.0), mask: u64::from(spec.branch.1) },
            MatchValue::Ternary { value: u64::from(spec.recirc_id), mask: 0xff },
            reg_match(spec.regs.har),
            reg_match(spec.regs.sar),
            reg_match(spec.regs.mar),
        ],
        priority: spec.priority,
        action,
        data: spec.op.data.clone(),
    })
}

/// The unified initialization-block filtering table (§4.1.1).
///
/// **Deviation from the paper** (documented in DESIGN.md): the prototype
/// provisions one filtering table per parse path (K tables). This
/// reproduction uses a single SRAM-backed (algorithmic-TCAM) table whose
/// key is the union of all paths' filterable fields plus the parse-path
/// bitmap matched *ternary*: an entry requires exactly the header bits its
/// filter fields need and leaves deeper headers don't-care. This preserves
/// the per-path triggering semantics (a `hdr.eth.*` filter matches every
/// path that parsed Ethernet) while supporting the thousands of concurrent
/// filter entries the program-capacity experiments need (§6.2.3) within
/// one stage's memory.
pub mod init {
    use super::*;

    /// Filterable fields of the unified init table, in key order.
    pub fn key_fields(ft: &FieldTable, f: &P4rpFields) -> Vec<FieldId> {
        let intr = ft.intrinsics();
        vec![
            intr.ingress_port,
            f.lookup("hdr.eth.dst").unwrap(),
            f.lookup("hdr.eth.type").unwrap(),
            f.ipv4_src,
            f.ipv4_dst,
            f.ipv4_proto,
            f.l4_src_port,
            f.l4_dst_port,
            f.lookup("hdr.nc.op").unwrap(),
        ]
    }

    /// Full key spec: `(parse_bitmap, rc_valid, fields…)`, all ternary.
    pub fn key_spec(ft: &FieldTable, f: &P4rpFields) -> KeySpec {
        let mut fields = vec![
            (ft.intrinsics().parse_bitmap, MatchKind::Ternary),
            (f.rc_valid, MatchKind::Ternary),
        ];
        fields.extend(key_fields(ft, f).into_iter().map(|id| (id, MatchKind::Ternary)));
        KeySpec::new(fields)
    }

    /// Which parse-path bits a filter field name requires.
    pub fn required_bits(name: &str) -> u16 {
        let eth = 1u16 << bitmap::ETH;
        if name.starts_with("hdr.eth.") {
            eth
        } else if name.starts_with("hdr.ipv4.") {
            eth | (1 << bitmap::IPV4)
        } else if name.starts_with("hdr.tcp.") {
            eth | (1 << bitmap::IPV4) | (1 << bitmap::TCP)
        } else if name.starts_with("hdr.udp.") {
            eth | (1 << bitmap::IPV4) | (1 << bitmap::UDP)
        } else if name.starts_with("hdr.nc.") {
            eth | (1 << bitmap::IPV4) | (1 << bitmap::UDP) | (1 << bitmap::NC)
        } else {
            // hdr.l4.* (either transport) needs at least IPv4; meta.* needs
            // nothing.
            if name.starts_with("hdr.l4.") {
                eth | (1 << bitmap::IPV4)
            } else {
                0
            }
        }
    }

    /// Whether the unified table can express a filter on `name`.
    pub fn supports_field(ft: &FieldTable, f: &P4rpFields, name: &str) -> bool {
        match f.lookup(name) {
            None => false,
            Some(id) => key_fields(ft, f).contains(&id),
        }
    }
}

/// One program's filter entry for the unified init table.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterEntrySpec {
    /// Prog id.
    pub prog_id: u16,
    /// Parse-path bits the filter requires (ternary bitmap condition).
    pub required_bitmap: u16,
    /// `(field, value, mask)` triples resolved against the field table.
    pub conds: Vec<(FieldId, u64, u64)>,
    /// Priority.
    pub priority: i32,
}

/// Encode a filter entry. Unreferenced key fields are wildcards.
pub fn encode_filter_entry(
    ft: &FieldTable,
    f: &P4rpFields,
    spec: &FilterEntrySpec,
) -> TableEntry {
    let mut matches = vec![
        MatchValue::Ternary {
            value: u64::from(spec.required_bitmap),
            mask: u64::from(spec.required_bitmap),
        },
        // Only first-pass packets are (re)classified; recirculated packets
        // keep the program id restored from their state header.
        MatchValue::Ternary { value: 0, mask: 1 },
    ];
    let key_fields = init::key_fields(ft, f);
    for _ in &key_fields {
        matches.push(MatchValue::ANY);
    }
    for (field, value, mask) in &spec.conds {
        if let Some(pos) = key_fields.iter().position(|k| k == field) {
            matches[2 + pos] = MatchValue::Ternary { value: *value, mask: *mask };
        }
    }
    TableEntry {
        matches,
        priority: spec.priority,
        action: 0, // set_prog
        data: vec![u64::from(spec.prog_id)],
    }
}

/// Encode a recirculation-block entry: packets of `prog_id` that have made
/// `recirc_id` passes go around again.
pub fn encode_recirc_entry(prog_id: u16, recirc_id: u8) -> TableEntry {
    TableEntry {
        matches: vec![
            MatchValue::Ternary { value: u64::from(prog_id), mask: 0xffff },
            MatchValue::Ternary { value: u64::from(recirc_id), mask: 0xff },
        ],
        priority: 0,
        action: 0, // recirculate
        data: vec![],
    }
}

/// Key spec of the recirculation-block table.
pub fn recirc_key_spec(f: &P4rpFields) -> KeySpec {
    KeySpec::new(vec![(f.prog_id, MatchKind::Ternary), (f.recirc_id, MatchKind::Ternary)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::{build_catalogue, AtomicAction, MemOpKind};
    use crate::fields;
    use p4rp_lang::Reg;

    #[test]
    fn rpb_entry_encodes_action_and_data() {
        let (ft, _, f) = fields::build().unwrap();
        let cat = build_catalogue(&ft, &f, true, rmt_sim::hash::CRC16_BUYPASS);
        let spec = RpbEntrySpec::plain(7, (0, 0), 0, RpbOp::loadi(Reg::Mar, 512));
        let e = encode_rpb_entry(&cat, &spec).unwrap();
        assert_eq!(e.matches.len(), 6);
        assert_eq!(e.data, vec![512]);
        assert_eq!(e.action, cat.action_id(AtomicAction::LoadI(Reg::Mar)).unwrap());
    }

    #[test]
    fn egress_catalogue_rejects_forwarding() {
        let (ft, _, f) = fields::build().unwrap();
        let cat = build_catalogue(&ft, &f, false, rmt_sim::hash::CRC16_BUYPASS);
        let spec = RpbEntrySpec::plain(7, (0, 0), 0, RpbOp::forward(3));
        assert!(encode_rpb_entry(&cat, &spec).is_err());
        let spec = RpbEntrySpec::plain(7, (0, 0), 0, RpbOp::mem(MemOpKind::Read));
        assert!(encode_rpb_entry(&cat, &spec).is_ok());
    }

    #[test]
    fn required_bits_are_cumulative() {
        use crate::fields::bitmap as bm;
        let eth = 1u16 << bm::ETH;
        assert_eq!(init::required_bits("hdr.eth.dst"), eth);
        assert_eq!(init::required_bits("hdr.ipv4.dst"), eth | (1 << bm::IPV4));
        assert_eq!(
            init::required_bits("hdr.udp.dst_port"),
            eth | (1 << bm::IPV4) | (1 << bm::UDP)
        );
        assert_eq!(
            init::required_bits("hdr.nc.op"),
            eth | (1 << bm::IPV4) | (1 << bm::UDP) | (1 << bm::NC)
        );
        assert_eq!(init::required_bits("meta.ingress_port"), 0);
    }

    #[test]
    fn filter_entry_places_conditions() {
        let (ft, _, f) = fields::build().unwrap();
        let spec = FilterEntrySpec {
            prog_id: 9,
            required_bitmap: init::required_bits("hdr.udp.dst_port"),
            conds: vec![(f.l4_dst_port, 7777, 0xffff)],
            priority: 1,
        };
        let e = encode_filter_entry(&ft, &f, &spec);
        let keys = init::key_fields(&ft, &f);
        assert_eq!(e.matches.len(), 2 + keys.len());
        assert_eq!(e.data, vec![9]);
        let pos = keys.iter().position(|k| *k == f.l4_dst_port).unwrap();
        assert_eq!(
            e.matches[2 + pos],
            MatchValue::Ternary { value: 7777, mask: 0xffff }
        );
        // Bitmap condition is a partial (required-bits) ternary match.
        let bm = u64::from(spec.required_bitmap);
        assert_eq!(e.matches[0], MatchValue::Ternary { value: bm, mask: bm });
    }

    #[test]
    fn supported_filter_fields() {
        let (ft, _, f) = fields::build().unwrap();
        for name in ["hdr.eth.dst", "hdr.ipv4.dst", "hdr.udp.dst_port", "meta.ingress_port"] {
            assert!(init::supports_field(&ft, &f, name), "{name}");
        }
        for name in ["hdr.ipv4.ttl", "hdr.tcp.seq", "bogus"] {
            assert!(!init::supports_field(&ft, &f, name), "{name}");
        }
    }

    #[test]
    fn recirc_entry_shape() {
        let e = encode_recirc_entry(5, 0);
        assert_eq!(e.matches.len(), 2);
        assert_eq!(e.action, 0);
    }
}
