//! # p4runpro — runtime programmability for RMT programmable switches
//!
//! A complete reproduction of *P4runpro: Enabling Runtime Programmability
//! for RMT Programmable Switches* (SIGCOMM 2024) in Rust, running against
//! a resource-faithful RMT ASIC simulator instead of an Intel Tofino (the
//! substitution is argued in `DESIGN.md`).
//!
//! The facade re-exports the workspace crates:
//!
//! * [`netpkt`] — wire formats (Ethernet/IPv4/TCP/UDP, the NetCache and
//!   recirculation headers);
//! * [`rmt_sim`] — the RMT switch simulator (parser, match-action
//!   pipeline, SALUs, hash units, traffic manager, resource/power models);
//! * [`p4rp_lang`] — the P4runpro language front end;
//! * [`p4rp_dataplane`] — the fixed data plane (RPBs, initialization and
//!   recirculation blocks, atomic-operation catalogues);
//! * [`p4rp_compiler`] — the runtime compiler (lowering, constraint-based
//!   allocation, entry generation, consistent-update planning);
//! * [`p4rp_ctl`] — the control plane ([`Controller`]: deploy / revoke /
//!   monitor);
//! * [`baselines`] — ActiveRMT / FlyMon / conventional-P4 comparators;
//! * [`traffic`] — load generation, campus-trace synthesis, replay,
//!   analysis;
//! * [`p4rp_progs`] — the 15 Table-1 programs and workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use p4runpro::Controller;
//!
//! let mut ctl = Controller::with_defaults().unwrap();
//! ctl.deploy("program drop_all(<hdr.ipv4.src, 0.0.0.0, 0x00000000>) { DROP; }")
//!     .unwrap();
//! assert_eq!(ctl.deployed_programs().count(), 1);
//! ctl.revoke("drop_all").unwrap();
//! ```

pub use baselines;
pub use netpkt;
pub use p4rp_compiler;
pub use p4rp_ctl;
pub use p4rp_dataplane;
pub use p4rp_lang;
pub use p4rp_progs;
pub use rmt_sim;
pub use traffic;

pub use p4rp_ctl::{
    AuditReport, ChaosConfig, ChaosOutcome, Controller, CtlError, DeployReport, FaultStats,
    ReconcileReport, RevokeReport, ServerConfig, ServerStats, TelemetryReport,
};
pub use rmt_sim::fault::{FaultKind, FaultPlan, FaultTrigger};
pub use p4rp_lang::{count_loc, parse};
