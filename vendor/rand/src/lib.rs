//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the *API subset it actually uses* — `StdRng`
//! seeded via `seed_from_u64`, `Rng::random`, `Rng::random_range`, and
//! slice shuffling — behind the same module paths as rand 0.10. The
//! generator is xoshiro256\*\*, seeded through splitmix64: deterministic,
//! fast, and of ample quality for synthesizing traffic traces and workload
//! schedules. It is **not** the upstream ChaCha-based `StdRng`, so streams
//! differ from builds against crates.io rand (the `results/` goldens are
//! regenerated against this generator).

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl<const N: usize> Standard for [u8; N] {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

/// Integer types usable with `random_range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low` is the caller's
    /// contract (enforced by the blanket `random_range`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Widening-multiply rejection-free mapping (Lemire); the
                // tiny modulo bias at 128-bit width is immaterial here.
                let x = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as u128;
                (low as u128 + x) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform draw over the type's full domain (`rng.random::<f64>()`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform draw from a half-open range.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "random_range: empty range");
        T::sample_in(self, range.start, range.end)
    }

    /// Bernoulli draw.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (the vendored `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence adapters.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates in-place shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// The conventional glob import.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u16 = rng.random_range(1024..u16::MAX);
            assert!((1024..u16::MAX).contains(&v));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let u: usize = rng.random_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
