//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free locking
//! API: `lock()` returns the guard directly (poisoning is ignored, which
//! matches parking_lot's actual behavior of having no poisoning at all).

use std::sync;

/// Mutual exclusion with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader-writer lock with the same non-poisoning treatment.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read lock.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Exclusive write lock.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || *m2.lock() += 5).join().unwrap();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
