//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides a
//! small value-tree serialization model under the same crate name:
//!
//! * [`Value`] — a JSON-shaped document tree (null/bool/number/string/
//!   array/object, object key order preserved),
//! * [`Serialize`] / [`Deserialize`] — conversion to and from [`Value`],
//! * [`json`] — a compact/pretty writer and a strict recursive-descent
//!   reader, so `to_string` → `from_str` round-trips losslessly,
//! * [`impl_serde_struct!`] — generates both impls for a named-field
//!   struct, standing in for `#[derive(Serialize, Deserialize)]`.
//!
//! Unlike upstream serde there is no `Serializer`/`Deserializer` visitor
//! machinery; everything goes through the value tree. That is ample for
//! the telemetry reports this workspace exchanges, and it keeps the stub
//! auditable.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (kept exact; never routed through f64).
    U64(u64),
    /// Signed integer, used when a number is negative.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved on write.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Deserialization error with a short human-readable cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build from any message.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// A value had the wrong shape.
    pub fn expected(what: &str) -> Error {
        Error::msg(format!("expected {what}"))
    }

    /// An object was missing a required field.
    pub fn missing(field: &str) -> Error {
        Error::msg(format!("missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the value tree.
pub trait Serialize {
    /// Represent `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the value tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::expected(stringify!($t))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::expected(stringify!($t))),
                    _ => Err(Error::expected(stringify!($t))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::expected(stringify!($t))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::expected(stringify!($t))),
                    _ => Err(Error::expected(stringify!($t))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::expected("number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::expected("2-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Generates [`Serialize`] and [`Deserialize`] for a named-field struct,
/// standing in for `#[derive(Serialize, Deserialize)]`. Every field must
/// be listed and itself implement both traits:
///
/// ```ignore
/// serde::impl_serde_struct!(StageMetrics { hits, misses, salu_ops });
/// ```
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(),
                       $crate::Serialize::to_value(&self.$field)),)+
                ])
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                $(let $field = $crate::Deserialize::from_value(
                    v.get(stringify!($field))
                        .ok_or_else(|| $crate::Error::missing(stringify!($field)))?,
                )?;)+
                Ok(Self { $($field),+ })
            }
        }
    };
}

/// JSON text encoding and decoding for the value tree.
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serialize to compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value(), None, 0);
        out
    }

    /// Serialize to human-indented JSON (two spaces).
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value(), Some(2), 0);
        out
    }

    /// Parse JSON text into `T`.
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
        T::from_value(&parse(text)?)
    }

    /// Parse JSON text into a raw [`Value`].
    pub fn parse(text: &str) -> Result<Value, Error> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::msg(format!("trailing data at byte {pos}")));
        }
        Ok(v)
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(x) => {
                if x.is_finite() {
                    // Keep integral floats distinguishable from ints so
                    // round-trips preserve the F64 variant.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_value(out, item, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, item)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, item, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * depth {
                out.push(' ');
            }
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
        if *pos < bytes.len() && bytes[*pos] == b {
            *pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, *pos)))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", *pos))),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    fields.push((key, parse_value(bytes, pos)?));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", *pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
            _ => Err(Error::msg(format!("unexpected byte at {}", *pos))),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", *pos)))
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next quote or escape;
                    // validating from `pos` per character would make
                    // string parsing quadratic in the input length.
                    let start = *pos;
                    while let Some(&b) = bytes.get(*pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        *pos += 1;
                    }
                    let s = std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| Error::msg("bad utf-8"))?;
                    out.push_str(s);
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        let mut is_float = false;
        if bytes.get(*pos) == Some(&b'.') {
            is_float = true;
            *pos += 1;
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
            is_float = true;
            *pos += 1;
            if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| Error::msg("bad number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| Error::msg("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(|_| Error::msg("bad number"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| Error::msg("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Sample {
        count: u64,
        label: String,
        ratio: f64,
        tags: Vec<u32>,
        note: Option<String>,
    }

    crate::impl_serde_struct!(Sample { count, label, ratio, tags, note });

    #[test]
    fn struct_roundtrip_compact_and_pretty() {
        let s = Sample {
            count: u64::MAX,
            label: "quoted \"name\"\nline".into(),
            ratio: 0.375,
            tags: vec![1, 2, 3],
            note: None,
        };
        for text in [json::to_string(&s), json::to_string_pretty(&s)] {
            let back: Sample = json::from_str(&text).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn parses_nested_documents() {
        let v = json::parse(r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Str("d".into())));
    }

    #[test]
    fn rejects_malformed() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("\"unterminated").is_err());
        assert!(json::parse("{} trailing").is_err());
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = json::to_string(&2.0f64);
        assert_eq!(text, "2.0");
        let v: f64 = json::from_str(&text).unwrap();
        assert_eq!(v, 2.0);
    }
}
