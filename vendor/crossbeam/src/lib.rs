//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Two modules are provided:
//!
//! * [`channel`], backed by `std::sync::mpsc`. `bounded(n)` maps to
//!   `mpsc::sync_channel(n)` and `unbounded()` to `mpsc::channel()`;
//!   semantics the workspace relies on (blocking send on a full bounded
//!   channel, iteration ending when the sender drops) are identical.
//! * [`rcu`], a generation-stamped publication cell in the spirit of
//!   `crossbeam-epoch`: one writer publishes immutable `Arc` snapshots,
//!   many readers poll a single atomic generation counter and clone the
//!   `Arc` only when it changed. Reclamation is the `Arc` drop of the
//!   superseded snapshot once the last reader releases it — the same
//!   deferred-destruction contract epoch GC provides, collapsed onto
//!   `Arc` because snapshots here are coarse (one per control batch, not
//!   one per node).

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half; clonable like crossbeam's.
    pub enum Sender<T> {
        /// Bounded flavor (blocking send when full).
        Bounded(mpsc::SyncSender<T>),
        /// Unbounded flavor.
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender drops.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Iterate over received values until the channel closes.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// Channel with capacity `cap`; senders block when it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }

    /// Channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }
}

pub mod rcu {
    //! Single-writer / many-reader snapshot publication.
    //!
    //! The writer side calls [`RcuCell::publish`]; each publish replaces
    //! the current `Arc<T>` and bumps the generation counter *inside* the
    //! lock, so a reader that observes generation `g` under the lock is
    //! guaranteed to hold the snapshot of exactly that generation. The
    //! reader fast path ([`RcuReader::refresh`]) is one `Acquire` load of
    //! the generation counter; the lock is taken only on an actual change,
    //! which on the intended workloads (per-packet polling against
    //! control-plane-rate publishes) makes the steady state lock-free.

    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    /// The publication cell: an atomically versioned `Arc<T>` slot.
    #[derive(Debug)]
    pub struct RcuCell<T> {
        generation: AtomicU64,
        value: Mutex<Arc<T>>,
    }

    impl<T: Default> Default for RcuCell<T> {
        fn default() -> Self {
            RcuCell::new(T::default())
        }
    }

    impl<T> RcuCell<T> {
        /// A cell holding `value` at generation 0.
        pub fn new(value: T) -> RcuCell<T> {
            RcuCell { generation: AtomicU64::new(0), value: Mutex::new(Arc::new(value)) }
        }

        /// Replace the published snapshot; returns the new generation.
        /// Intended for a single writer — concurrent publishes serialize
        /// on the internal lock but their ordering is then unspecified.
        pub fn publish(&self, value: T) -> u64 {
            let mut slot = self.value.lock().expect("rcu cell poisoned");
            *slot = Arc::new(value);
            // Bumped while the lock is held so generation and snapshot
            // can never be observed out of step by `load`.
            self.generation.fetch_add(1, Ordering::Release) + 1
        }

        /// The current generation (0 until the first publish). One
        /// `Acquire` load — safe to call per packet.
        pub fn generation(&self) -> u64 {
            self.generation.load(Ordering::Acquire)
        }

        /// The current `(generation, snapshot)` pair, consistent with each
        /// other.
        pub fn load(&self) -> (u64, Arc<T>) {
            let slot = self.value.lock().expect("rcu cell poisoned");
            (self.generation.load(Ordering::Acquire), Arc::clone(&slot))
        }
    }

    /// A reader's cached subscription to an [`RcuCell`].
    #[derive(Debug)]
    pub struct RcuReader<T> {
        cell: Arc<RcuCell<T>>,
        seen: u64,
        cached: Arc<T>,
    }

    impl<T> RcuReader<T> {
        /// Subscribe, capturing the cell's current snapshot.
        pub fn new(cell: Arc<RcuCell<T>>) -> RcuReader<T> {
            let (seen, cached) = cell.load();
            RcuReader { cell, seen, cached }
        }

        /// The generation of the snapshot this reader holds.
        pub fn seen(&self) -> u64 {
            self.seen
        }

        /// The snapshot this reader holds (no staleness check).
        pub fn current(&self) -> &Arc<T> {
            &self.cached
        }

        /// Poll for a newer snapshot. Returns `None` (after one atomic
        /// load) when nothing was published since the last call; on a
        /// change, re-caches and returns the fresh snapshot. Dropping the
        /// previous `Arc` here is the RCU reclamation point.
        pub fn refresh(&mut self) -> Option<&Arc<T>> {
            if self.cell.generation() == self.seen {
                return None;
            }
            let (gen, arc) = self.cell.load();
            self.seen = gen;
            self.cached = arc;
            Some(&self.cached)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::rcu::{RcuCell, RcuReader};
    use std::sync::Arc;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rcu_reader_sees_each_publish_once() {
        let cell = Arc::new(RcuCell::new(vec![1u32]));
        let mut reader = RcuReader::new(Arc::clone(&cell));
        assert_eq!(reader.seen(), 0);
        assert!(reader.refresh().is_none(), "nothing published yet");
        cell.publish(vec![1, 2]);
        assert_eq!(cell.generation(), 1);
        assert_eq!(reader.refresh().unwrap().as_slice(), &[1, 2]);
        assert!(reader.refresh().is_none(), "already caught up");
        cell.publish(vec![1, 2, 3]);
        cell.publish(vec![1, 2, 3, 4]);
        // A reader that skipped a generation lands on the latest.
        assert_eq!(reader.refresh().unwrap().len(), 4);
        assert_eq!(reader.seen(), 3);
    }

    #[test]
    fn rcu_publish_is_visible_across_threads() {
        let cell = Arc::new(RcuCell::new(0u64));
        let mut reader = RcuReader::new(Arc::clone(&cell));
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=100u64 {
                    cell.publish(i);
                }
            })
        };
        writer.join().unwrap();
        assert_eq!(**reader.refresh().unwrap(), 100);
        assert_eq!(reader.seen(), 100);
    }

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = channel::unbounded::<&'static str>();
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), "a");
        assert_eq!(rx.into_iter().collect::<Vec<_>>(), vec!["b"]);
    }
}
