//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! `bounded(n)` maps to `mpsc::sync_channel(n)` and `unbounded()` to
//! `mpsc::channel()`; semantics the workspace relies on (blocking send
//! on a full bounded channel, iteration ending when the sender drops)
//! are identical.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half; clonable like crossbeam's.
    pub enum Sender<T> {
        /// Bounded flavor (blocking send when full).
        Bounded(mpsc::SyncSender<T>),
        /// Unbounded flavor.
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender drops.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Iterate over received values until the channel closes.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// Channel with capacity `cap`; senders block when it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }

    /// Channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = channel::unbounded::<&'static str>();
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), "a");
        assert_eq!(rx.into_iter().collect::<Vec<_>>(), vec!["b"]);
    }
}
