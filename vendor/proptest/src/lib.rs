//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use — `proptest!`, `any`, ranges, tuples, `prop_map`,
//! `prop_filter`, `prop_filter_map`, `prop_oneof!`, `sample::select`,
//! `collection::vec`, simple string patterns — over a deterministic seeded
//! generator. Two deliberate simplifications versus upstream:
//!
//! * **no shrinking** — a failing case reports its inputs via the panic
//!   message (every generated case is reproducible from the fixed seed);
//! * **string "regexes"** are interpreted structurally: `\PC{a,b}` (and the
//!   general `…{a,b}` suffix form) produce printable ASCII soup of the
//!   requested length, which is what the robustness suites need.

use rand::prelude::*;

/// Deterministic per-test RNG.
pub type TestRng = StdRng;

pub mod test_runner {
    use super::*;

    /// Runner configuration (`ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Base seed; each case derives its own stream from it.
        pub seed: u64,
    }

    impl Config {
        /// `ProptestConfig::with_cases(n)`.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, seed: 0x9_7457_0057 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    /// Drives the cases of one property.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// Construct from a config.
        pub fn new(config: Config) -> TestRunner {
            TestRunner { config }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG for one case: derived, so cases are independent.
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::seed_from_u64(self.config.seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }
    }
}

pub mod strategy {
    use super::*;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map the generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `f` (regenerating otherwise).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, f }
        }

        /// Filter and map in one step.
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap { inner: self, whence, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// How many regenerations a filter may burn before giving up.
    const MAX_FILTER_ATTEMPTS: usize = 10_000;

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` adapter.
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_FILTER_ATTEMPTS {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}`: too many rejections", self.whence);
        }
    }

    /// `prop_filter_map` adapter.
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..MAX_FILTER_ATTEMPTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map `{}`: too many rejections", self.whence);
        }
    }

    /// A constant strategy (`Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// From options.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    // ---- primitive strategies ------------------------------------------

    /// Full-domain strategy returned by [`any`](super::arbitrary::any).
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if hi == <$t>::MAX {
                        if lo == <$t>::MIN { return rng.random_range(<$t>::MIN..<$t>::MAX) }
                        return rng.random_range((lo - 1)..hi) + 1;
                    }
                    rng.random_range(lo..hi + 1)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A/0);
    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);

    /// String "pattern" strategy: `\PC{a,b}` → printable ASCII of length
    /// `a..=b`; a bare pattern without a `{a,b}` suffix produces one char.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = match self.rfind('{').zip(self.rfind('}')) {
                Some((open, close)) if open < close => {
                    let body = &self[open + 1..close];
                    let mut it = body.splitn(2, ',');
                    let lo: usize = it.next().and_then(|s| s.trim().parse().ok()).unwrap_or(0);
                    let hi: usize = it.next().and_then(|s| s.trim().parse().ok()).unwrap_or(lo);
                    (lo, hi.max(lo))
                }
                _ => (1, 1),
            };
            let len = if hi == lo { lo } else { rng.random_range(lo..hi + 1) };
            (0..len).map(|_| rng.random_range(0x20u8..0x7f) as char).collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::TestRng;
    use rand::prelude::*;

    /// Types generatable over their full domain.
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, bool, f64);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            rng.random()
        }
    }

    /// `any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::prelude::*;

    /// Uniform choice from a fixed set (`prop::sample::select`).
    #[derive(Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.random_range(0..self.0.len())].clone()
        }
    }

    /// Select one of the given values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from an empty set");
        Select(values)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::prelude::*;

    /// Vec strategy with a length range.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                if self.hi == self.lo { self.lo } else { rng.random_range(self.lo..self.hi) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lo: len.start, hi: len.end }
    }
}

/// The `prop::` module path used by the prelude (`prop::sample::select`).
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

/// Everything a property test conventionally imports.
pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub use test_runner::Config as ProptestConfig;

/// Define property tests.
///
/// Supports the upstream surface this workspace uses: an optional
/// `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(pat in strategy, …) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal: expand each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let runner = $crate::test_runner::TestRunner::new(config);
            for __case in 0..runner.cases() {
                let mut __rng = runner.rng_for(__case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {}/{} failed: {}", __case + 1, runner.cases(), msg)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Assert inside a property (records the failing case instead of tearing
/// down the whole runner — here: early-returns the case as failed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

/// Discard cases whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn maps_and_filters_compose(s in (0u32..100).prop_map(|v| v * 2)
                                        .prop_filter("nonzero", |v| *v != 0)) {
            prop_assert!(s % 2 == 0);
            prop_assert!(s != 0);
        }

        #[test]
        fn oneof_and_select(v in prop_oneof![
            prop::sample::select(vec!["a", "b"]).prop_map(str::to_string),
            (0u32..10).prop_map(|i| i.to_string()),
        ]) {
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn vecs_have_requested_lengths(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn string_patterns_are_printable(s in "\\PC{0,40}") {
            prop_assert!(s.len() <= 40);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 5);
            prop_assert!(x != 5);
        }
    }

    #[test]
    fn failing_property_panics() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(_x in 0u32..10) {
                    prop_assert!(false, "forced failure");
                }
            }
            always_fails();
        });
        assert!(r.is_err());
    }
}
