//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!` — over a simple
//! warmup-then-measure wall-clock loop. No statistics machinery: each
//! benchmark reports mean ns/iter (and throughput when configured), which
//! is enough to compare runs by eye and to keep `cargo bench` green
//! offline. Honors `CRITERION_QUICK=1` for smoke runs.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier (`BenchmarkId::from_parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build from a displayable parameter.
    pub fn from_parameter<P: core::fmt::Display>(p: P) -> BenchmarkId {
        BenchmarkId { name: p.to_string() }
    }

    /// Build from a function name and parameter.
    pub fn new<P: core::fmt::Display>(function: &str, p: P) -> BenchmarkId {
        BenchmarkId { name: format!("{function}/{p}") }
    }
}

impl core::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
    budget: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record its mean wall-clock cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: let caches/branch predictors settle and estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.budget / 4 {
            std_black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_nanos().max(1) as f64 / warm_iters.max(1) as f64;
        // Measure: as many iterations as fit the remaining budget.
        let iters = ((self.budget.as_nanos() as f64 * 0.75 / est) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn budget() -> Duration {
    if std::env::var("CRITERION_QUICK").is_ok() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(200)
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let per = match throughput {
        Some(Throughput::Bytes(b)) => {
            let gbps = b as f64 / ns; // bytes per ns == GB/s
            format!("  ({gbps:.3} GB/s)")
        }
        Some(Throughput::Elements(e)) => {
            format!("  ({:.1} Melem/s)", e as f64 / ns * 1e3)
        }
        None => String::new(),
    };
    println!("bench {name:<40} {ns:>12.1} ns/iter{per}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Upstream tunes sample counts; the stand-in keeps its fixed budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark one closure under `name`.
    pub fn bench_function<F>(&mut self, name: impl core::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0, budget: budget() };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.ns_per_iter, self.throughput);
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0, budget: budget() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.ns_per_iter, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark one closure under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0, budget: budget() };
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

/// Bundle benchmark functions, as upstream's macro does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("in_group", |b| b.iter(|| black_box(3u64) * 7));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &5u64, |b, v| {
            b.iter(|| black_box(*v) + 1)
        });
        g.finish();
    }
}
