//! An interactive runtime CLI against a freshly provisioned switch — the
//! analogue of the prototype's runtime CLI (§5). Reads commands from
//! stdin; see `help` for the command set. Multi-line programs can be
//! entered with literal `\n` escapes.
//!
//! ```sh
//! echo 'deploy program p(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) { FORWARD(3); }
//! programs
//! status' | cargo run --example repl
//! ```

use p4runpro::p4rp_ctl::Cli;
use p4runpro::Controller;
use std::io::BufRead;

fn main() {
    let mut cli = Cli::new(Controller::with_defaults().expect("provision"));
    println!("p4runpro runtime CLI — `help` for commands, ctrl-d to quit");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim() == "quit" || line.trim() == "exit" {
            break;
        }
        println!("{}", cli.exec(&line));
    }
}
