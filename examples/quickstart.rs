//! Quickstart: provision the P4runpro data plane once, then link the
//! paper's in-network cache (Figure 2) at runtime and watch it serve
//! reads, absorb writes, and forward misses — no reprovisioning, no
//! traffic disruption.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use netpkt::{CacheOp, ParsedPacket};
use p4runpro::Controller;
use p4runpro::p4rp_progs::sources;

fn main() {
    // 1. Provision the switch with the fixed P4runpro data plane. This is
    //    the only "compile-time" step; everything after is runtime.
    let mut ctl = Controller::with_defaults().expect("provisioning fits the chip");
    println!("provisioned: 10 ingress + 12 egress RPBs, 65,536 buckets each\n");

    // 2. Write the P4runpro program (the paper's Figure 2) and link it.
    let source = sources::cache(
        "cache",
        "<hdr.udp.dst_port, 7777, 0xffff>",
        1024,
        &[(0x8888, 512)],
    );
    println!("{source}");
    let report = &ctl.deploy(&source).expect("deploys cleanly")[0];
    println!(
        "linked `{}` in {:.1} ms (allocation {:.2} ms, {} entries, depth {}, {} pass(es))\n",
        report.name,
        report.update_delay.as_millis_f64(),
        report.alloc_wall.as_secs_f64() * 1e3,
        report.entries_installed,
        report.depth,
        report.passes,
    );

    // 3. Traffic: a server fills the cache, a client reads it.
    let flows = p4runpro::traffic::make_flows(1, 1, 0.0);
    let tuple = flows[0].tuple;

    let write = p4runpro::traffic::netcache_frame(&tuple, CacheOp::Write, 0x8888, 4242);
    let out = ctl.inject(0, &write).unwrap();
    println!("cache write: consumed by the switch (dropped = {})", out.dropped);

    let read = p4runpro::traffic::netcache_frame(&tuple, CacheOp::Read, 0x8888, 0);
    let out = ctl.inject(7, &read).unwrap();
    let (port, frame) = &out.emitted[0];
    let reply = ParsedPacket::parse(frame).unwrap();
    println!(
        "cache read:  answered from the switch on port {port} with value {}",
        reply.netcache.unwrap().value
    );

    let miss = p4runpro::traffic::netcache_frame(&tuple, CacheOp::Read, 0x1234, 0);
    let out = ctl.inject(7, &miss).unwrap();
    println!("cache miss:  forwarded to the server behind port {}", out.emitted[0].0);

    // 4. Monitor the program's memory through the control plane, then
    //    revoke it — memory is locked, reset, and returned.
    let bucket = ctl.read_memory("cache", "mem1").unwrap()[512];
    println!("\ncontrol plane sees bucket 512 = {bucket}");
    let revoke = ctl.revoke("cache").unwrap();
    println!(
        "revoked in {:.1} ms; resources back to {:.0}% memory / {:.0}% entries",
        revoke.update_delay.as_millis_f64(),
        ctl.resources().memory_utilization() * 100.0,
        ctl.resources().entry_utilization() * 100.0,
    );
}
