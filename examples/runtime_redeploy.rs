//! Live redeployment under traffic — the §6.4(a) scenario as a runnable
//! demo: a replay thread pushes the synthetic campus trace through the
//! switch while the main thread deploys and revokes programs every few
//! hundred milliseconds of trace time. The RX rate never flinches.
//!
//! The switch is shared between the two threads behind a `parking_lot`
//! mutex (packets and control operations interleave, each atomic — the
//! consistency model of §4.3), and the replay thread streams its bucket
//! statistics back over a crossbeam channel.
//!
//! ```sh
//! cargo run --release --example runtime_redeploy
//! ```

use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use p4runpro::p4rp_progs::{instance, Family, WorkloadParams};
use p4runpro::rmt_sim::clock::Nanos;
use p4runpro::traffic::{synthesize, CampusParams, Replay};
use p4runpro::Controller;
use std::sync::Arc;

fn main() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy("program basefwd(<hdr.ipv4.src, 0.0.0.0, 0x00000000>) { FORWARD(1); }")
        .unwrap();
    let ctl = Arc::new(Mutex::new(ctl));

    let params = CampusParams {
        duration: Nanos::from_secs(6),
        ..Default::default()
    };
    let trace = synthesize(&params);
    println!(
        "replaying {} packets ({}s of 100 Mbps campus traffic) while churning programs…\n",
        trace.packets.len(),
        params.duration.as_secs_f64()
    );

    let (stats_tx, stats_rx) = unbounded();
    let replay_ctl = Arc::clone(&ctl);
    let replayer = std::thread::spawn(move || {
        let mut replay = Replay::new(trace.packets);
        let bucket = replay.bucket;
        let mut sent = 0usize;
        while !replay.done() {
            let next = replay.next_time().unwrap() + Nanos(1);
            {
                let mut ctl = replay_ctl.lock();
                replay.run_until(next, |port, frame| ctl.inject(port, frame).unwrap());
            }
            // Surface completed buckets as they fill.
            while let Some(s) = replay.stats.get(sent) {
                stats_tx.send((s.t_secs, s.rx_rate_bps(bucket) / 1e6)).unwrap();
                sent += 1;
            }
        }
        replay.finish();
    });

    // Control loop: deploy a random Table-1 program, revoke the previous
    // one, every ~40 completed buckets (≈2 s of trace time).
    let mut deployed: Option<String> = None;
    let mut churn = 0usize;
    let mut received = 0usize;
    while let Ok((t, mbps)) = stats_rx.recv() {
        received += 1;
        if received.is_multiple_of(10) {
            println!("t={t:5.2}s  rx={mbps:6.2} Mbps  (programs deployed so far: {churn})");
        }
        if received.is_multiple_of(40) {
            let mut ctl = ctl.lock();
            if let Some(old) = deployed.take() {
                ctl.revoke(&old).unwrap();
            }
            let family = Family::ALL[churn % 15];
            let src = instance(family, 2000 + churn, WorkloadParams::default());
            if let Ok(reports) = ctl.deploy(&src) {
                println!(
                    "  ↳ deployed {} ({:.1} ms update) without touching the traffic",
                    reports[0].name,
                    reports[0].update_delay.as_millis_f64()
                );
                deployed = Some(reports[0].name.clone());
            }
            churn += 1;
        }
    }
    replayer.join().unwrap();

    let ctl = ctl.lock();
    println!(
        "\ndone: {} programs churned, {} still deployed, switch forwarded continuously",
        churn,
        ctl.deployed_programs().count()
    );
}
