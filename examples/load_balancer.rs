//! The Figure 16 stateless load balancer, linked at runtime: the control
//! plane fills the DIP/port pools through virtual-memory writes, then the
//! switch spreads a flow mix across two server ports while rewriting the
//! destination address.
//!
//! ```sh
//! cargo run --release --example load_balancer
//! ```

use netpkt::ParsedPacket;
use p4runpro::p4rp_progs::sources;
use p4runpro::traffic;
use p4runpro::Controller;

fn main() {
    let mut ctl = Controller::with_defaults().unwrap();
    let src = sources::lb("lb", "<hdr.ipv4.dst, 10.2.0.0, 0xffff0000>", 256, &[2, 3]);
    println!("{src}");
    ctl.deploy(&src).unwrap();

    // Fill the pools via the raw memory APIs (Appendix B.2): even buckets
    // go to server A (port 2), odd buckets to server B (port 3).
    let server_a = u32::from_be_bytes([10, 9, 9, 1]);
    let server_b = u32::from_be_bytes([10, 9, 9, 2]);
    for i in 0..256u32 {
        ctl.write_memory("lb", "port_pool_lb", i, i % 2).unwrap();
        ctl.write_memory("lb", "dip_pool_lb", i, if i % 2 == 0 { server_a } else { server_b })
            .unwrap();
    }
    println!("pools filled: 256 buckets across 2 servers\n");

    // Send 64 distinct flows at the virtual IP range and watch the spread.
    let flows = traffic::make_flows(8, 64, 0.5);
    let mut to_a = 0usize;
    let mut to_b = 0usize;
    for f in &flows {
        let frame = traffic::frame_for(&f.tuple, 100);
        let out = ctl.inject(0, &frame).unwrap();
        let (port, bytes) = &out.emitted[0];
        let dst = ParsedPacket::parse(bytes).unwrap().ipv4.unwrap().dst_addr;
        match port {
            2 => to_a += 1,
            3 => to_b += 1,
            other => panic!("unexpected port {other}"),
        }
        // The DIP rewrite and the port choice must agree.
        let expect = if *port == 2 { [10, 9, 9, 1] } else { [10, 9, 9, 2] };
        assert_eq!(dst.octets(), expect, "DIP matches the chosen server");
    }
    println!("64 flows: {to_a} → server A (port 2), {to_b} → server B (port 3)");
    let imbalance = (to_a as f64 - to_b as f64).abs() / 64.0;
    println!("flow imbalance: {imbalance:.3} (CRC16 spread over 256 buckets)");
}
