//! Heavy-hitter detection (the Figure 17 program) on a synthetic trace
//! with known ground truth: link the detector at runtime, stream the
//! trace, and score the flows it reports to the control plane.
//!
//! ```sh
//! cargo run --release --example heavy_hitter
//! ```

use p4runpro::netpkt::FiveTuple;
use p4runpro::p4rp_progs::sources;
use p4runpro::traffic::{self, f1_score, Replay, TimedPacket};
use p4runpro::rmt_sim::clock::{Bandwidth, Nanos};
use p4runpro::Controller;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashSet;

const THRESHOLD: u32 = 256;

fn main() {
    let mut ctl = Controller::with_defaults().unwrap();
    let src = sources::hh("hh", "<hdr.ipv4.src, 10.1.0.0, 0xffff0000>", 1024, THRESHOLD);
    let report = &ctl.deploy(&src).unwrap()[0];
    println!(
        "heavy-hitter detector linked at runtime: {} entries across {} pass(es)\n",
        report.entries_installed, report.passes
    );

    // Ground truth: 20 heavy flows (400 packets each) hidden among 1,000
    // light flows (20 packets each).
    let flows = traffic::make_flows(11, 1020, 0.7);
    let mut schedule: Vec<FiveTuple> = Vec::new();
    for (i, f) in flows.iter().enumerate() {
        let n = if i < 20 { 400 } else { 20 };
        schedule.extend(std::iter::repeat_n(f.tuple, n));
    }
    schedule.shuffle(&mut StdRng::seed_from_u64(4));

    let rate = Bandwidth::from_mbps(100.0);
    let mut t = Nanos::ZERO;
    let packets: Vec<TimedPacket> = schedule
        .iter()
        .map(|ft| {
            let frame = traffic::frame_for(ft, 64);
            let len = frame.len();
            let pkt = TimedPacket { t, port: 0, frame };
            t += rate.serialize(len);
            pkt
        })
        .collect();
    let truth: HashSet<FiveTuple> = flows[..20].iter().map(|f| f.tuple).collect();
    println!("streaming {} packets; {} flows exceed the {THRESHOLD}-packet threshold", packets.len(), truth.len());

    let mut replay = Replay::new(packets);
    replay.run_all(|port, frame| ctl.inject(port, frame).unwrap());

    let score = f1_score(&replay.reported_flows, &truth);
    println!(
        "\nreported {} flows: precision {:.3}, recall {:.3}, F1 {:.3}",
        replay.reported_flows.len(),
        score.precision,
        score.recall,
        score.f1
    );
    for ft in replay.reported_flows.iter().take(5) {
        println!("  e.g. {ft}");
    }

    // The sketches live in switch memory; the control plane can audit them.
    let cms = ctl.read_memory("hh", "cms1_hh").unwrap();
    let loaded = cms.iter().filter(|&&v| v > 0).count();
    println!("\nCMS row 1: {loaded} of {} buckets touched", cms.len());
}
