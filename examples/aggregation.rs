//! In-network aggregation — the §7 extension the paper sketches
//! ("Implementing the simple aggregation logic in SwitchML requires only
//! modifying P4runpro to support multicast"): a SwitchML-style allreduce
//! over one aggregation slot, linked at runtime.
//!
//! Each of N workers sends its gradient chunk in the cache-header value
//! field. The switch adds it into a per-slot accumulator and counts
//! arrivals; the worker that completes the slot receives the sum and it is
//! multicast back to the whole group. Earlier workers' packets are
//! consumed by the switch.
//!
//! ```sh
//! cargo run --example aggregation
//! ```

use netpkt::{CacheOp, ParsedPacket};
use p4runpro::traffic;
use p4runpro::Controller;

const WORKERS: u16 = 4;

fn main() {
    let mut ctl = Controller::with_defaults().unwrap();
    // Multicast group 1: one port per worker.
    ctl.set_multicast_group(1, (0..WORKERS).collect()).unwrap();

    // The aggregation program: count arrivals; all-but-last are dropped
    // after contributing; the completing packet reads the full sum and is
    // multicast to the worker group. `hdr.nc.key2` selects the slot.
    let src = format!(
        r#"
@ agg_count 256
@ agg_sum 256
program allreduce(<hdr.udp.dst_port, 7777, 0xffff>) {{
    EXTRACT(hdr.nc.key2, mar);  //aggregation slot
    LOADI(sar, 1);
    MEMADD(agg_count);          //arrival counter
    BRANCH:
    /*last worker: drain the sum and broadcast it*/
    case(<sar, {WORKERS}, 0xffffffff>) {{
        EXTRACT(hdr.nc.key2, mar);
        EXTRACT(hdr.nc.value, sar);
        MEMADD(agg_sum);            //sar = final sum
        MODIFY(hdr.nc.value, sar);  //result into the packet
        MULTICAST(1);               //broadcast to the group
    }};
    /*earlier workers: contribute and stop*/
    case(<sar, 0, 0x00000000>) {{
        EXTRACT(hdr.nc.key2, mar);
        EXTRACT(hdr.nc.value, sar);
        MEMADD(agg_sum);
        DROP;
    }};
}}
"#
    );
    let report = &ctl.deploy(&src).unwrap()[0];
    println!(
        "allreduce linked: {} entries, {} pass(es), update {:.1} ms\n",
        report.entries_installed,
        report.passes,
        report.update_delay.as_millis_f64()
    );

    // Four workers contribute gradients 10, 20, 30, 40 to slot 7.
    let flows = traffic::make_flows(6, WORKERS as usize, 0.0);
    let contributions = [10u32, 20, 30, 40];
    let mut broadcast: Option<Vec<(u16, Vec<u8>)>> = None;
    for (w, grad) in contributions.iter().enumerate() {
        let frame = traffic::netcache_frame(&flows[w].tuple, CacheOp::Write, 7, *grad);
        let out = ctl.inject(w as u16, &frame).unwrap();
        if out.emitted.is_empty() {
            println!("worker {w}: contributed {grad}, packet consumed");
        } else {
            println!("worker {w}: contributed {grad} → aggregation complete!");
            broadcast = Some(out.emitted);
        }
    }

    let emitted = broadcast.expect("the last worker completes the slot");
    assert_eq!(emitted.len(), WORKERS as usize, "one replica per worker");
    println!("\nbroadcast to {} workers:", emitted.len());
    for (port, frame) in &emitted {
        let value = ParsedPacket::parse(frame).unwrap().netcache.unwrap().value;
        println!("  port {port}: sum = {value}");
        assert_eq!(value, 100, "10+20+30+40");
    }
    println!("\nin-network allreduce of {} values in one RTT — linked at runtime.", WORKERS);
}
